// Remote telemetry harvest: pull worker-side metrics and trace buffers over
// the transport and merge them — clock-offset corrected — into one
// cluster-wide view.
//
// The transport itself lives above this module (runtime depends on obs, not
// the reverse), so the harvester talks through closures per worker
// endpoint: `ping` performs one lightweight round trip and returns the
// timestamp quadruple, `fetch_metrics` pulls the worker's Prometheus text
// (MetricsDump), and `fetch_trace_chunk` pulls the worker's span buffer
// (TraceDump) from a sequence cursor.  harvest_worker() sends a burst of
// pings to converge the ClockOffsetEstimator, pulls both dumps, and rebases
// every harvested span onto the local (coordinator) timeline.
// ClusterTelemetry accumulates the per-worker results and produces the
// merged artifacts: one aggregated Prometheus dump and one Chrome-trace
// span list in which worker compute sits — monotonic and correctly nested —
// under the coordinator's task spans.
//
// Cursor protocol (continuous harvest).  SpanBuffer stamps every recorded
// span with a monotonically increasing sequence number.  A TraceDump
// request carries the coordinator's cursor C: it acknowledges every span
// with seq < C (the worker prunes them) and asks for everything from C on.
// The reply carries the remaining spans plus [base, next): base is the seq
// of the first span included, next the cursor to present on the following
// round.  Spans are therefore delivered at-least-once — a reply lost to a
// dead coordinator is re-sent on the next round — and the coordinator
// drops any span below its cursor, so repeated mid-run harvests never
// double-count.  The final Shutdown message carries the last cursor as an
// ack, so the worker's graceful-shutdown flush into the process-global
// Tracer only covers spans no harvest round ever delivered.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "obs/clock.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"

namespace pico::obs {

/// One cursor-delimited slice of a worker's span stream (TraceDump reply).
struct TraceChunk {
  std::uint64_t base = 0;  ///< seq of the first span included
  std::uint64_t next = 0;  ///< cursor to request (and ack) next round
  std::vector<SpanRecord> spans;
};

/// Worker-side span store.  record() is called by the serve thread;
/// chunk()/ack() by the same thread when answering TraceDump — but the
/// annotation-enforced locking keeps it safe if a future worker grows
/// internal parallelism (ROADMAP: no bare shared state in the runtime).
///
/// record() stamps each span with the next sequence number; spans stay in
/// the buffer until acknowledged (ack / the cursor of the next chunk()
/// call), giving the harvest loop at-least-once delivery.
class SpanBuffer {
 public:
  void record(SpanRecord span) {
    MutexLock lock(mutex_);
    span.seq = static_cast<std::int64_t>(next_seq_++);
    spans_.push_back(std::move(span));
  }

  /// Prune every span with seq < cursor (coordinator acknowledged them).
  /// The cursor typically arrives off the wire: the prune count is clamped
  /// to what the buffer actually holds, so a corrupt or hostile cursor can
  /// at worst over-acknowledge — it can never drive the erase out of range.
  void ack(std::uint64_t cursor) {
    MutexLock lock(mutex_);
    ack_locked(cursor);
  }

  /// Answer one TraceDump: ack everything below `cursor`, then copy the
  /// remaining (unacknowledged) spans.  The copies stay buffered until the
  /// next round's cursor acknowledges them.
  TraceChunk chunk(std::uint64_t cursor) {
    MutexLock lock(mutex_);
    ack_locked(cursor);
    TraceChunk out;
    out.base = base_seq_;
    out.next = next_seq_;
    out.spans = spans_;
    return out;
  }

  /// Move out everything still buffered, acknowledged or not (legacy
  /// full-drain semantics; the shutdown flush path).
  std::vector<SpanRecord> drain() {
    MutexLock lock(mutex_);
    std::vector<SpanRecord> out;
    out.swap(spans_);
    base_seq_ = next_seq_;
    return out;
  }

  std::size_t size() const {
    MutexLock lock(mutex_);
    return spans_.size();
  }

  /// Sequence number the next recorded span will get.
  std::uint64_t next_seq() const {
    MutexLock lock(mutex_);
    return next_seq_;
  }

  /// Graceful-shutdown drain: move any unharvested spans into the global
  /// Tracer so they survive the serve loop (correct timebase whenever the
  /// worker shares the coordinator's process/clock; a remote process keeps
  /// them visible in its own tracer for local dumping).  Spans a harvest
  /// round already delivered are acknowledged by the Shutdown message's
  /// cursor first, so they are not flushed twice.
  void flush_to_tracer();

 private:
  void ack_locked(std::uint64_t cursor) PICO_REQUIRES(mutex_) {
    if (cursor <= base_seq_) return;
    const std::uint64_t prune =
        std::min<std::uint64_t>(cursor - base_seq_, spans_.size());
    spans_.erase(spans_.begin(),
                 spans_.begin() + static_cast<std::ptrdiff_t>(prune));
    base_seq_ += prune;
  }

  mutable Mutex mutex_;
  std::vector<SpanRecord> spans_ PICO_GUARDED_BY(mutex_);
  std::uint64_t next_seq_ PICO_GUARDED_BY(mutex_) = 0;
  /// seq of spans_.front() (== next_seq_ when empty).
  std::uint64_t base_seq_ PICO_GUARDED_BY(mutex_) = 0;
};

/// Binary encoding of a span list — the TraceDump wire payload ("PSP2",
/// which adds the per-span sequence number; "PSP1" buffers from older
/// workers still decode, their spans carrying seq = -1).
/// decode_spans throws TransportError on a malformed buffer.
std::vector<std::uint8_t> encode_spans(const std::vector<SpanRecord>& spans);
std::vector<SpanRecord> decode_spans(const std::uint8_t* data,
                                     std::size_t size);

/// Everything harvested from one worker, spans already rebased onto the
/// local timeline (span.start_ns -= estimated offset).
struct WorkerTelemetry {
  int device = -1;
  bool reachable = false;       ///< harvest round trips succeeded
  std::int64_t offset_ns = 0;   ///< remote-minus-local clock offset
  std::int64_t rtt_ns = 0;      ///< smoothed ping RTT
  std::int64_t error_bound_ns = 0;
  int clock_samples = 0;        ///< accepted quadruples behind offset_ns
  std::string metrics_text;     ///< worker registry, Prometheus exposition
  std::vector<SpanRecord> spans;  ///< rebased worker spans
  /// Cursor to present on the next harvest round (acks `spans`); equals the
  /// request cursor when the trace fetch failed or the peer is pre-cursor.
  std::uint64_t next_cursor = 0;
  /// Flight-recorder events pulled this round (EventDump), timestamps
  /// rebased like spans.  The continuously refreshed copy is the black box
  /// the harvester retains for a device that later dies.
  std::vector<EventRecord> events;
  /// Event cursor for the next round; request cursor when the fetch failed
  /// or the peer predates EventDump (PIC3 and older).
  std::uint64_t next_event_cursor = 0;
  int rounds = 0;  ///< harvest rounds folded into this entry (see add())
};

/// One worker endpoint, expressed transport-agnostically.  Any closure may
/// throw (e.g. TransportError when the worker died); harvest_worker then
/// returns a WorkerTelemetry flagged reachable = false that still carries
/// everything pulled before the failure, rebased.
struct HarvestEndpoint {
  int device = -1;
  std::function<ClockSample()> ping;
  std::function<std::string()> fetch_metrics;
  /// Cursor-aware trace pull: send a TraceDump carrying the given cursor,
  /// return the decoded chunk.
  std::function<TraceChunk(std::uint64_t cursor)> fetch_trace_chunk;
  /// Legacy full-drain pull (pre-cursor peers / simple tests).  Used only
  /// when fetch_trace_chunk is unset.
  std::function<std::vector<SpanRecord>()> fetch_trace;
  /// Cursor-aware black-box pull: send an EventDump carrying the cursor,
  /// return the decoded chunk.  Unset = peer without the verb (no events).
  std::function<EventChunk(std::uint64_t cursor)> fetch_event_chunk;
  /// Estimator to refine and use for rebasing.  Usually pre-warmed by the
  /// piggybacked quadruples of ordinary WorkResults; null = local-only.
  ClockOffsetEstimator* clock = nullptr;
  /// First span sequence wanted (and ack of everything below).
  std::uint64_t trace_cursor = 0;
  /// First event sequence wanted (events below are already harvested).
  std::uint64_t event_cursor = 0;
};

/// One harvest round: ping `clock_pings` times, pull the trace chunk, pull
/// the metrics, rebase the spans.  The trace is pulled *before* the metrics
/// so spans already delivered survive a worker dying mid-round — they are
/// rebased and returned (reachable = false) instead of dropped.  Spans
/// below the request cursor (re-delivered after a lost reply) are filtered
/// out here, so callers may merge `spans` blindly.
WorkerTelemetry harvest_worker(const HarvestEndpoint& endpoint,
                               int clock_pings = 4);

/// Accumulates WorkerTelemetry across harvest rounds, workers and (for the
/// adaptive runtime) plan switches.  Guarded: the harvester thread adds
/// while report/teardown threads read snapshots.
class ClusterTelemetry {
 public:
  /// Fold one round's result in.  Results for a device already present are
  /// merged: spans append, scalar fields (reachability, clocks, cursor,
  /// metrics text — cumulative on the worker, so latest wins) refresh.
  void add(WorkerTelemetry telemetry);
  void merge_from(ClusterTelemetry&& other);

  std::vector<WorkerTelemetry> workers() const;

  /// Harvested worker spans (already rebased) from every worker.
  std::vector<SpanRecord> worker_spans() const;

  /// One cluster-wide Prometheus dump: the local (coordinator) exposition
  /// followed by each worker's, delimited by comment headers carrying the
  /// device id and the offset used for rebasing.
  std::string merged_prometheus(const std::string& local_text) const;

 private:
  mutable Mutex mutex_;
  std::vector<WorkerTelemetry> workers_ PICO_GUARDED_BY(mutex_);
};

}  // namespace pico::obs
