// Wire messages between stage coordinators and device workers.
//
// A WorkRequest carries the input piece a device needs (tensor + its region
// in the segment-input map) and the output region it must produce; a
// WorkResult carries the produced piece back.  serialize/deserialize give
// the length-prefixed binary encoding used by the TCP transport (the
// in-process transport moves Messages directly).
//
// Wire format "PIC4" (v4).  v2 extended the v1 frame with distributed
// observability fields: a propagated trace context (trace_id + parent span)
// so workers can open real spans under the coordinator's trace, four
// NTP-style timestamps (t1..t3 on the wire, t4 taken by the receiver) so
// per-device clock offsets can be estimated from ordinary request/response
// traffic, worker-side compute start/end instants, and an opaque blob used
// by the control-plane messages (MetricsDump / TraceDump payloads).  v3
// added the continuous-harvest span cursors to the TraceDump exchange
// (span_cursor / span_cursor_base) so repeated mid-run harvests never
// double-count a span — see obs/remote.hpp for the protocol.  v4 adds the
// EventDump verb (flight-recorder black-box harvest, obs/flight_recorder.hpp)
// reusing the same cursor fields as event cursors; the frame layout is
// byte-identical to v3, the magic bump only announces the new verb.
//
// Version gating: the encoder always emits PIC4.  The decoder accepts PIC4,
// PIC3 and PIC2 — a v3 frame decodes identically (it just never carries an
// EventDump), and a v2 frame decodes with both cursors zero, which is
// exactly the legacy full-drain semantics, so a new coordinator still
// drives an old worker.  Anything else — including a v1 "PIC1" frame — is
// rejected with a TransportError naming both the received and the
// supported versions, so a version-skewed peer ends a serve loop
// gracefully instead of tearing the process down.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/region.hpp"
#include "tensor/tensor.hpp"

namespace pico::runtime {

enum class MessageType : std::uint32_t {
  WorkRequest = 1,
  WorkResult = 2,
  Shutdown = 3,
  // Control plane (v2).  Each *Dump type doubles as request (empty blob,
  // coordinator -> worker) and reply (filled blob, worker -> coordinator).
  Ping = 4,         ///< clock probe: carries t1 (sender clock)
  Pong = 5,         ///< clock reply: echoes t1, adds t2/t3 (worker clock)
  MetricsDump = 6,  ///< reply blob: worker registry, Prometheus text
  TraceDump = 7,    ///< reply blob: worker span buffer (encode_spans)
  EventDump = 8,    ///< reply blob: worker flight recorder (encode_events, v4)
};

struct Message {
  MessageType type = MessageType::Shutdown;
  std::int64_t task_id = 0;
  std::int32_t stage_index = 0;
  std::int32_t first_node = 0;  ///< segment to run (WorkRequest)
  std::int32_t last_node = 0;
  /// WorkResult: wall-clock seconds the device spent in execute_segment,
  /// timed worker-side and carried back so the coordinator can attribute
  /// compute time per device (the paper's Eq. 5/6 measured counterpart).
  /// A duration, not an instant — meaningful without any clock sync.
  double compute_seconds = 0.0;

  // --- distributed trace context (v2) --------------------------------------
  /// 0 = no trace context (tracing disabled at the sender).  Nonzero on a
  /// WorkRequest asks the worker to record real spans under this trace.
  std::uint64_t trace_id = 0;
  /// Span id of the coordinator-side stage span this request runs under
  /// (see pipeline.cpp: derived from task id + stage).  Echoed in replies.
  std::uint64_t parent_span = 0;

  // --- clock-offset timestamps (v2) ----------------------------------------
  // NTP-style quadruple: t1 = origin send instant (origin clock), t2 = peer
  // receive instant, t3 = peer reply-send instant (both peer clock); the
  // origin takes t4 locally when the reply lands.  Requests carry t1;
  // replies echo t1 and fill t2/t3.  All obs::Tracer::now_ns() timebases.
  std::int64_t t_origin_ns = 0;  ///< t1 (echoed back in the reply)
  std::int64_t t_recv_ns = 0;    ///< t2: worker clock at request receipt
  std::int64_t t_send_ns = 0;    ///< t3: worker clock just before reply send
  /// Worker-side compute window (worker clock) for WorkResults; the
  /// coordinator rebases these onto its own timeline via obs::rebase.
  std::int64_t t_compute_start_ns = 0;
  std::int64_t t_compute_end_ns = 0;

  // --- span cursors (v3, continuous harvest) -------------------------------
  /// TraceDump request: first span sequence wanted — and an ack: the worker
  /// prunes every buffered span with seq below it.  TraceDump reply: the
  /// cursor to present next round (seq one past the last span included).
  /// Shutdown: final ack, so the worker's tracer flush skips everything a
  /// harvest round already delivered.  0 = legacy full-drain (v2 peer).
  /// EventDump (v4) reuses the pair as *event* cursors: the request carries
  /// the last seen event seq, the reply the chunk's `next` cursor.
  std::uint64_t span_cursor = 0;
  /// TraceDump reply: sequence of the first span included (lets the
  /// coordinator detect a gap — spans lost to an overrun worker buffer).
  /// EventDump reply: the chunk's `base` (gap = ring overwrote history).
  std::uint64_t span_cursor_base = 0;

  /// Control-plane payload (MetricsDump: Prometheus text bytes; TraceDump:
  /// obs::encode_spans bytes).  Empty for data-plane messages.
  std::vector<std::uint8_t> blob;

  Region in_region;   ///< where `tensor` sits in the segment-input map
  Region out_region;  ///< region of the segment output to produce / produced
  Tensor tensor;      ///< input piece (request) or result piece (result)
};

/// Binary encoding (no framing — the transport adds the length prefix).
/// Always emits the current version ("PIC4").
std::vector<std::uint8_t> serialize(const Message& message);
/// Decodes a PIC4 or PIC3 frame (identical layout), or a PIC2 frame from an
/// older peer (cursors then default to zero).  Throws TransportError for any
/// other version magic (e.g. a v1 "PIC1" peer) and InvariantError for a
/// truncated/corrupt frame.
Message deserialize(const std::uint8_t* data, std::size_t size);

}  // namespace pico::runtime
