// Wire messages between stage coordinators and device workers.
//
// A WorkRequest carries the input piece a device needs (tensor + its region
// in the segment-input map) and the output region it must produce; a
// WorkResult carries the produced piece back.  serialize/deserialize give
// the length-prefixed binary encoding used by the TCP transport (the
// in-process transport moves Messages directly).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/region.hpp"
#include "tensor/tensor.hpp"

namespace pico::runtime {

enum class MessageType : std::uint32_t {
  WorkRequest = 1,
  WorkResult = 2,
  Shutdown = 3,
};

struct Message {
  MessageType type = MessageType::Shutdown;
  std::int64_t task_id = 0;
  std::int32_t stage_index = 0;
  std::int32_t first_node = 0;  ///< segment to run (WorkRequest)
  std::int32_t last_node = 0;
  /// WorkResult: wall-clock seconds the device spent in execute_segment,
  /// timed worker-side and carried back so the coordinator can attribute
  /// compute time per device (the paper's Eq. 5/6 measured counterpart).
  double compute_seconds = 0.0;
  Region in_region;   ///< where `tensor` sits in the segment-input map
  Region out_region;  ///< region of the segment output to produce / produced
  Tensor tensor;      ///< input piece (request) or result piece (result)
};

/// Binary encoding (no framing — the transport adds the length prefix).
std::vector<std::uint8_t> serialize(const Message& message);
Message deserialize(const std::uint8_t* data, std::size_t size);

}  // namespace pico::runtime
