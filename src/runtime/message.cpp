#include "runtime/message.hpp"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/error.hpp"

namespace pico::runtime {

namespace {

constexpr std::uint32_t kMagicV1 = 0x50494331;  // "PIC1" (compute_seconds)
constexpr std::uint32_t kMagicV2 = 0x50494332;  // "PIC2" (trace ctx + clocks)
constexpr std::uint32_t kMagicV3 = 0x50494333;  // "PIC3" (span cursors)
constexpr std::uint32_t kMagicV4 = 0x50494334;  // "PIC4" (EventDump verb)

/// Render a magic word the way it appears as ASCII on the wire
/// (little-endian byte order), falling back to hex for unprintable bytes.
std::string magic_name(std::uint32_t magic) {
  // Most-significant byte first: 0x50494332 reads back as "PIC2".
  char chars[5] = {};
  for (int i = 0; i < 4; ++i) {
    chars[i] = static_cast<char>((magic >> (8 * (3 - i))) & 0xff);
  }
  bool printable = true;
  for (int i = 0; i < 4; ++i) {
    printable &= std::isprint(static_cast<unsigned char>(chars[i])) != 0;
  }
  if (printable) return std::string(chars, 4);
  char hex[16];
  std::snprintf(hex, sizeof(hex), "0x%08x", magic);
  return hex;
}

template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  const auto offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

template <typename T>
T get(const std::uint8_t*& cursor, const std::uint8_t* end) {
  PICO_CHECK_MSG(cursor + sizeof(T) <= end, "message truncated");
  T value;
  std::memcpy(&value, cursor, sizeof(T));
  cursor += sizeof(T);
  return value;
}

void put_region(std::vector<std::uint8_t>& out, const Region& r) {
  put<std::int32_t>(out, r.row_begin);
  put<std::int32_t>(out, r.row_end);
  put<std::int32_t>(out, r.col_begin);
  put<std::int32_t>(out, r.col_end);
}

Region get_region(const std::uint8_t*& cursor, const std::uint8_t* end) {
  Region r;
  r.row_begin = get<std::int32_t>(cursor, end);
  r.row_end = get<std::int32_t>(cursor, end);
  r.col_begin = get<std::int32_t>(cursor, end);
  r.col_end = get<std::int32_t>(cursor, end);
  return r;
}

}  // namespace

std::vector<std::uint8_t> serialize(const Message& message) {
  std::vector<std::uint8_t> out;
  const Shape shape = message.tensor.shape();
  out.reserve(128 + message.blob.size() +
              static_cast<std::size_t>(shape.elements()) * 4);
  put<std::uint32_t>(out, kMagicV4);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(message.type));
  put<std::int64_t>(out, message.task_id);
  put<std::int32_t>(out, message.stage_index);
  put<std::int32_t>(out, message.first_node);
  put<std::int32_t>(out, message.last_node);
  put<double>(out, message.compute_seconds);
  put<std::uint64_t>(out, message.trace_id);
  put<std::uint64_t>(out, message.parent_span);
  put<std::int64_t>(out, message.t_origin_ns);
  put<std::int64_t>(out, message.t_recv_ns);
  put<std::int64_t>(out, message.t_send_ns);
  put<std::int64_t>(out, message.t_compute_start_ns);
  put<std::int64_t>(out, message.t_compute_end_ns);
  put<std::uint64_t>(out, message.span_cursor);
  put<std::uint64_t>(out, message.span_cursor_base);
  put_region(out, message.in_region);
  put_region(out, message.out_region);
  put<std::uint64_t>(out, message.blob.size());
  if (!message.blob.empty()) {
    const auto offset = out.size();
    out.resize(offset + message.blob.size());
    std::memcpy(out.data() + offset, message.blob.data(),
                message.blob.size());
  }
  put<std::int32_t>(out, shape.channels);
  put<std::int32_t>(out, shape.height);
  put<std::int32_t>(out, shape.width);
  const auto offset = out.size();
  const std::size_t bytes = static_cast<std::size_t>(shape.elements()) * 4;
  out.resize(offset + bytes);
  if (bytes > 0) {
    std::memcpy(out.data() + offset, message.tensor.data().data(), bytes);
  }
  return out;
}

Message deserialize(const std::uint8_t* data, std::size_t size) {
  const std::uint8_t* cursor = data;
  const std::uint8_t* end = data + size;
  const auto magic = get<std::uint32_t>(cursor, end);
  if (magic != kMagicV4 && magic != kMagicV3 && magic != kMagicV2) {
    // Version skew (e.g. a "PIC1" build on the other end) is a transport
    // condition the serve loop handles gracefully, not a fatal invariant.
    const char* hint = magic == kMagicV1 ? " (v1 peer?)" : "";
    throw TransportError("unsupported message version \"" +
                         magic_name(magic) + "\"" + hint +
                         "; this build speaks \"" + magic_name(kMagicV4) +
                         "\" (and reads \"" + magic_name(kMagicV3) +
                         "\" and \"" + magic_name(kMagicV2) + "\")");
  }
  Message message;
  message.type = static_cast<MessageType>(get<std::uint32_t>(cursor, end));
  message.task_id = get<std::int64_t>(cursor, end);
  message.stage_index = get<std::int32_t>(cursor, end);
  message.first_node = get<std::int32_t>(cursor, end);
  message.last_node = get<std::int32_t>(cursor, end);
  message.compute_seconds = get<double>(cursor, end);
  message.trace_id = get<std::uint64_t>(cursor, end);
  message.parent_span = get<std::uint64_t>(cursor, end);
  message.t_origin_ns = get<std::int64_t>(cursor, end);
  message.t_recv_ns = get<std::int64_t>(cursor, end);
  message.t_send_ns = get<std::int64_t>(cursor, end);
  message.t_compute_start_ns = get<std::int64_t>(cursor, end);
  message.t_compute_end_ns = get<std::int64_t>(cursor, end);
  if (magic == kMagicV4 || magic == kMagicV3) {
    // The cursors are wire-controlled but used only for comparison and
    // clamped pruning (SpanBuffer::ack bounds the erase by the buffer
    // size), never as an allocation size or subscript.
    message.span_cursor = get<std::uint64_t>(cursor, end);
    message.span_cursor_base = get<std::uint64_t>(cursor, end);
  }
  message.in_region = get_region(cursor, end);
  message.out_region = get_region(cursor, end);
  const auto blob_size = get<std::uint64_t>(cursor, end);
  PICO_CHECK_MSG(blob_size <= static_cast<std::uint64_t>(end - cursor),
                 "message blob truncated");
  message.blob.assign(cursor, cursor + blob_size);
  cursor += blob_size;
  Shape shape;
  shape.channels = get<std::int32_t>(cursor, end);
  shape.height = get<std::int32_t>(cursor, end);
  shape.width = get<std::int32_t>(cursor, end);
  // The shape is wire-controlled: reject negative extents and prove the
  // payload carries exactly elements()*4 bytes BEFORE allocating, so a
  // corrupt or malicious frame cannot drive a bogus extent into Tensor()
  // (elements() itself can overflow 64 bits for adversarial extents, so the
  // size identity is checked with division, which cannot wrap).
  PICO_CHECK_MSG(shape.channels >= 0 && shape.height >= 0 && shape.width >= 0,
                 "message tensor shape negative");
  const auto payload = static_cast<std::uint64_t>(end - cursor);
  const auto plane = static_cast<std::uint64_t>(shape.channels) *
                     static_cast<std::uint64_t>(shape.height);
  const auto width = static_cast<std::uint64_t>(shape.width);
  const bool size_ok =
      payload % 4 == 0 &&
      (width == 0 ? payload == 0
                  : plane == payload / 4 / width && (payload / 4) % width == 0);
  PICO_CHECK_MSG(size_ok, "message payload size mismatch");
  message.tensor = Tensor(shape);
  const auto bytes = static_cast<std::size_t>(payload);
  if (bytes > 0) {
    std::memcpy(message.tensor.data().data(), cursor, bytes);
  }
  return message;
}

}  // namespace pico::runtime
