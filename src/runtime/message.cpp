#include "runtime/message.hpp"

#include <cstring>

#include "common/error.hpp"

namespace pico::runtime {

namespace {

constexpr std::uint32_t kMagic = 0x50494331;  // "PIC1" (v1: compute_seconds)

template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  const auto offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

template <typename T>
T get(const std::uint8_t*& cursor, const std::uint8_t* end) {
  PICO_CHECK_MSG(cursor + sizeof(T) <= end, "message truncated");
  T value;
  std::memcpy(&value, cursor, sizeof(T));
  cursor += sizeof(T);
  return value;
}

void put_region(std::vector<std::uint8_t>& out, const Region& r) {
  put<std::int32_t>(out, r.row_begin);
  put<std::int32_t>(out, r.row_end);
  put<std::int32_t>(out, r.col_begin);
  put<std::int32_t>(out, r.col_end);
}

Region get_region(const std::uint8_t*& cursor, const std::uint8_t* end) {
  Region r;
  r.row_begin = get<std::int32_t>(cursor, end);
  r.row_end = get<std::int32_t>(cursor, end);
  r.col_begin = get<std::int32_t>(cursor, end);
  r.col_end = get<std::int32_t>(cursor, end);
  return r;
}

}  // namespace

std::vector<std::uint8_t> serialize(const Message& message) {
  std::vector<std::uint8_t> out;
  const Shape shape = message.tensor.shape();
  out.reserve(64 + static_cast<std::size_t>(shape.elements()) * 4);
  put<std::uint32_t>(out, kMagic);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(message.type));
  put<std::int64_t>(out, message.task_id);
  put<std::int32_t>(out, message.stage_index);
  put<std::int32_t>(out, message.first_node);
  put<std::int32_t>(out, message.last_node);
  put<double>(out, message.compute_seconds);
  put_region(out, message.in_region);
  put_region(out, message.out_region);
  put<std::int32_t>(out, shape.channels);
  put<std::int32_t>(out, shape.height);
  put<std::int32_t>(out, shape.width);
  const auto offset = out.size();
  const std::size_t bytes = static_cast<std::size_t>(shape.elements()) * 4;
  out.resize(offset + bytes);
  if (bytes > 0) {
    std::memcpy(out.data() + offset, message.tensor.data().data(), bytes);
  }
  return out;
}

Message deserialize(const std::uint8_t* data, std::size_t size) {
  const std::uint8_t* cursor = data;
  const std::uint8_t* end = data + size;
  PICO_CHECK_MSG(get<std::uint32_t>(cursor, end) == kMagic,
                 "bad message magic");
  Message message;
  message.type = static_cast<MessageType>(get<std::uint32_t>(cursor, end));
  message.task_id = get<std::int64_t>(cursor, end);
  message.stage_index = get<std::int32_t>(cursor, end);
  message.first_node = get<std::int32_t>(cursor, end);
  message.last_node = get<std::int32_t>(cursor, end);
  message.compute_seconds = get<double>(cursor, end);
  message.in_region = get_region(cursor, end);
  message.out_region = get_region(cursor, end);
  Shape shape;
  shape.channels = get<std::int32_t>(cursor, end);
  shape.height = get<std::int32_t>(cursor, end);
  shape.width = get<std::int32_t>(cursor, end);
  message.tensor = Tensor(shape);
  const std::size_t bytes = static_cast<std::size_t>(shape.elements()) * 4;
  PICO_CHECK_MSG(cursor + bytes == end, "message payload size mismatch");
  if (bytes > 0) {
    std::memcpy(message.tensor.data().data(), cursor, bytes);
  }
  return message;
}

}  // namespace pico::runtime
