#include "runtime/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/mutex.hpp"
#include "nn/receptive.hpp"
#include "obs/clock.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/harvester.hpp"
#include "obs/metrics.hpp"
#include "obs/remote.hpp"
#include "obs/trace.hpp"
#include "partition/branches.hpp"
#include "runtime/channel.hpp"
#include "runtime/worker.hpp"
#include "sched/hooks.hpp"
#include "tensor/slice.hpp"

namespace pico::runtime {

namespace {

struct TaskItem {
  std::int64_t id = 0;
  Tensor tensor;
  std::shared_ptr<std::promise<Tensor>> promise;
  std::int64_t submit_ns = 0;   ///< when submit() accepted the task
  std::int64_t enqueue_ns = 0;  ///< when it entered its current queue
};

double to_seconds(std::int64_t ns) { return static_cast<double>(ns) / 1e9; }

std::vector<obs::Label> stage_labels(std::size_t stage) {
  return {{"stage", std::to_string(stage)}};
}

/// Re-create a span from a duration measured elsewhere (worker-side compute,
/// queue waits): position it as ending now / at the given instant.
void record_interval(obs::Tracer& tracer, const char* name,
                     const char* category, std::int64_t track,
                     std::int64_t task_id, std::int64_t start_ns,
                     std::int64_t end_ns,
                     std::vector<std::pair<std::string, std::string>> args =
                         {}) {
  obs::SpanRecord span;
  span.name = name;
  span.category = category;
  span.track = track;
  span.task_id = task_id;
  span.start_ns = start_ns;
  span.duration_ns = end_ns - start_ns;
  span.args = std::move(args);
  tracer.record(std::move(span));
}

/// Nonzero trace id for one runtime instance (distinguishes the traces of
/// successive runtimes — e.g. across adaptive plan switches — in one dump).
std::uint64_t make_trace_id() {
  static std::atomic<std::uint64_t> counter{0};
  const auto id =
      (static_cast<std::uint64_t>(obs::Tracer::now_ns()) << 8) ^
      counter.fetch_add(1, std::memory_order_relaxed);
  return id | 1;
}

/// Span id of the coordinator-side stage-service span a WorkRequest runs
/// under; workers echo it so harvested spans name their parent.
std::uint64_t stage_span_id(std::int64_t task_id, std::size_t stage_index) {
  return (static_cast<std::uint64_t>(task_id + 1) << 16) |
         static_cast<std::uint64_t>(stage_index + 1);
}

}  // namespace

/// recv() skipping any stale data-plane messages (a coordinator that died
/// mid-task can leave WorkResults queued).  The drain is bounded by the
/// *stale-frame* count — a cap on junk, not on attempts, so a backlog of
/// queued WorkResults (a worker that died mid-gather can leave one per
/// in-flight task) never falsely reports a missing reply — and by the
/// connection's recv deadline when one is configured.  External linkage so
/// churn_test can exercise the drain paths directly.
Message expect_reply(Connection& connection, MessageType want) {
  // Far above any real backlog (bounded by queue capacity × stages), far
  // below a runaway peer flooding frames forever.
  constexpr int kMaxStale = 4096;
  int stale = 0;
  std::int64_t first_stale = 0;
  std::int64_t last_stale = 0;
  for (;;) {
    Message reply = connection.recv();
    if (reply.type == want) {
      if (stale > 0) {
        PICO_LOG(Warn) << "drained " << stale
                       << " stale WorkResult frame(s) (tasks " << first_stale
                       << ".." << last_stale
                       << ") while awaiting control-plane reply type "
                       << static_cast<std::uint32_t>(want);
      }
      return reply;
    }
    PICO_CHECK_MSG(reply.type == MessageType::WorkResult,
                   "unexpected control-plane reply type "
                       << static_cast<std::uint32_t>(reply.type));
    if (stale == 0) first_stale = reply.task_id;
    last_stale = reply.task_id;
    if (++stale >= kMaxStale) {
      throw TransportError(
          "control-plane reply never arrived (drained " +
          std::to_string(stale) + " stale data-plane frames)");
    }
  }
}

namespace {

/// Transport-ownership token for one device connection.  The Connection
/// contract allows one sender and one receiver thread per endpoint; with a
/// background harvester issuing control-plane round trips mid-run, the
/// coordinator and the harvester must alternate instead of interleaving
/// frames.  The gate is that token: a coordinator holds its stage's gates
/// from scatter through gather, the harvester holds exactly one gate for
/// one full round trip.  Deadlock-free by construction — coordinators
/// acquire gate sets in ascending device order (and, in pipelined plans,
/// stages own disjoint device sets), while the harvester never holds two
/// gates at once.
///
/// acquire()/release() pair across statements rather than scopes (the
/// holder performs full scatter/gather exchanges in between), which clang's
/// scope-based capability analysis cannot express — hence the explicit
/// opt-outs.  The tsan preset and the sched harvest model cover the
/// discipline dynamically, and the underlying Mutex still feeds lockdep.
struct ConnectionGate {
  Mutex mutex;
  void acquire() PICO_NO_THREAD_SAFETY_ANALYSIS { mutex.lock(); }
  void release() PICO_NO_THREAD_SAFETY_ANALYSIS { mutex.unlock(); }
};

/// RAII single-gate hold (the harvester's one-device round trip).
class GateLock {
 public:
  explicit GateLock(ConnectionGate& gate) : gate_(gate) { gate_.acquire(); }
  ~GateLock() { gate_.release(); }
  GateLock(const GateLock&) = delete;
  GateLock& operator=(const GateLock&) = delete;

 private:
  ConnectionGate& gate_;
};

/// RAII hold of every gate one stage's device set needs, acquired in
/// ascending device order (the global order that keeps multi-gate holders
/// cycle-free).
class GateSet {
 public:
  GateSet(const std::map<DeviceId, std::unique_ptr<ConnectionGate>>& gates,
          const partition::Stage& stage) {
    std::vector<DeviceId> devices;
    for (const partition::DeviceSlice& slice : stage.assignments) {
      devices.push_back(slice.device);
    }
    std::sort(devices.begin(), devices.end());
    devices.erase(std::unique(devices.begin(), devices.end()),
                  devices.end());
    held_.reserve(devices.size());
    for (const DeviceId device : devices) {
      ConnectionGate* gate = gates.at(device).get();
      gate->acquire();
      held_.push_back(gate);
    }
  }
  ~GateSet() {
    for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
      (*it)->release();
    }
  }
  GateSet(const GateSet&) = delete;
  GateSet& operator=(const GateSet&) = delete;

 private:
  std::vector<ConnectionGate*> held_;
};

/// Continuous-harvest period: the PICO_HARVEST_MS environment variable
/// overrides the option (0 or a non-number disables, like the default).
int resolved_harvest_ms(const RuntimeOptions& options) {
  if (const char* env = std::getenv("PICO_HARVEST_MS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0') {
      return value > 0 ? static_cast<int>(std::min<long>(value, 3600000))
                       : 0;
    }
    PICO_LOG(Warn) << "ignoring non-numeric PICO_HARVEST_MS=\"" << env
                   << "\"";
  }
  return std::max(0, options.harvest_ms);
}

/// Per-operation transport deadline: the PICO_NET_TIMEOUT_MS environment
/// variable overrides the option (0 or a non-number disables, like the
/// default).
std::int64_t resolved_net_timeout_ms(const RuntimeOptions& options) {
  if (const char* env = std::getenv("PICO_NET_TIMEOUT_MS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0') {
      return value > 0 ? static_cast<std::int64_t>(
                             std::min<long>(value, 3600000))
                       : 0;
    }
    PICO_LOG(Warn) << "ignoring non-numeric PICO_NET_TIMEOUT_MS=\"" << env
                   << "\"";
  }
  return std::max<std::int64_t>(0, options.net_timeout_ms);
}

obs::Harvester::Options harvester_options(const RuntimeOptions& options) {
  obs::Harvester::Options out;
  out.window_rounds = std::max(1, options.window_rounds);
  out.straggler = options.straggler;
  out.model = options.model;
  out.heartbeat_missed_rounds = std::max(1, options.heartbeat_missed_rounds);
  return out;
}

}  // namespace

struct PipelineRuntime::Impl {
  const nn::Graph& graph;
  partition::Plan plan;
  RuntimeOptions options;

  std::map<DeviceId, std::unique_ptr<Connection>> connections;
  std::vector<std::unique_ptr<Worker>> workers;

  std::vector<std::unique_ptr<BoundedQueue<TaskItem>>> queues;
  std::vector<SchedThread> coordinators;

  std::atomic<std::int64_t> next_task{0};
  std::atomic<long long> completed{0};
  std::atomic<bool> stopped{false};

  // Admission ledger for the QueueHighWater journal event: tasks accepted
  // by submit() and not yet resolved (value or exception).  The highwater
  // CAS loop records only on a new maximum, so a steady-state run journals
  // nothing here.
  std::atomic<std::int64_t> in_flight{0};
  std::atomic<std::int64_t> in_flight_highwater{0};

  void note_task_admitted() {
    const std::int64_t now = in_flight.fetch_add(1, std::memory_order_relaxed) + 1;
    std::int64_t high = in_flight_highwater.load(std::memory_order_relaxed);
    while (now > high) {
      if (in_flight_highwater.compare_exchange_weak(
              high, now, std::memory_order_relaxed)) {
        obs::record_event(obs::EventCode::QueueHighWater, now);
        break;
      }
    }
  }

  void note_task_resolved() {
    in_flight.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Resolved per-operation transport deadline (option + PICO_NET_TIMEOUT_MS
  /// override); applied to every connection before any thread starts, const
  /// afterwards.  0 = block forever.
  std::int64_t net_timeout_ms = 0;

  // Failure ledger: first device whose connection failed poisons the whole
  // runtime (any_failed) — coordinators fail tasks fast instead of touching
  // a half-dead cluster, and the owner (ResilientRuntime) rebuilds over the
  // survivors.  The map keeps the first-failure reason per device.
  mutable Mutex failed_mutex;
  std::map<DeviceId, std::string> failed PICO_GUARDED_BY(failed_mutex);
  std::atomic<bool> any_failed{false};

  // Per-stage / per-queue metric handles, resolved once against the global
  // registry before the coordinator threads start (read-only afterwards, so
  // no synchronization is needed on the vectors themselves; the metrics are
  // internally atomic).
  struct StageMetrics {
    obs::Histogram* scatter = nullptr;
    obs::Histogram* gather = nullptr;
    obs::Histogram* service = nullptr;
    obs::Histogram* compute_critical = nullptr;
    std::map<DeviceId, obs::Histogram*> device_compute;
    // Timestamp-derived splits (v2): request/reply wire time (rebased
    // worker clocks vs coordinator clocks) and worker-side queueing
    // (request receipt -> compute start, a pure worker-clock duration).
    std::map<DeviceId, obs::Histogram*> device_wire_request;
    std::map<DeviceId, obs::Histogram*> device_wire_reply;
    std::map<DeviceId, obs::Histogram*> device_worker_queue;
  };
  struct QueueMetrics {
    obs::Histogram* wait = nullptr;
    obs::Histogram* handoff = nullptr;
  };
  std::vector<StageMetrics> stage_metrics;
  std::vector<QueueMetrics> queue_metrics;
  obs::Histogram* task_latency = nullptr;
  obs::Counter* tasks_total = nullptr;

  // Per-device clock-offset estimators, fed by the quadruple piggybacked on
  // every WorkResult and by the shutdown Ping burst.  The map is built
  // before any coordinator starts and const afterwards; the estimators are
  // internally locked (several coordinators may serve one device in
  // sequential plans).
  std::map<DeviceId, std::shared_ptr<obs::ClockOffsetEstimator>> clocks;
  /// Trace context propagated in every WorkRequest (0 when tracing is off
  /// at start; workers then skip span recording).
  const std::uint64_t trace_id =
      obs::Tracer::global().enabled() ? make_trace_id() : 0;
  /// Worker telemetry accumulated across harvest rounds (see
  /// harvest_round; merged by device).
  obs::ClusterTelemetry telemetry;

  /// Per-device transport-ownership gates (see ConnectionGate).  Built
  /// alongside `connections` before any thread starts; the map itself is
  /// const afterwards.
  std::map<DeviceId, std::unique_ptr<ConnectionGate>> gates;
  /// Continuous-harvest policy engine (windows, λ̂, detectors) — internally
  /// locked, fed under round_mutex.
  obs::Harvester harvester;
  /// Resolved harvest period (option + PICO_HARVEST_MS override); 0 = no
  /// background thread.  Set before any thread starts, const afterwards.
  int harvest_ms = 0;
  /// Serializes harvest rounds (periodic thread, harvest_now callers and
  /// the final shutdown round).  A gate, not a data lock: the holder spends
  /// the round in transport round trips.
  ConnectionGate round_gate;
  /// Per-device span cursors (next sequence to request / ack).  Touched
  /// only briefly, never across I/O.
  Mutex cursor_mutex;
  std::map<DeviceId, std::uint64_t> cursors PICO_GUARDED_BY(cursor_mutex);
  /// Per-device flight-recorder event cursors (EventDump protocol).
  std::map<DeviceId, std::uint64_t> event_cursors PICO_GUARDED_BY(cursor_mutex);
  // Background harvest thread lifecycle: the loop sleeps on harvest_cv
  // between rounds; shutdown sets harvest_stop under the mutex and
  // notifies, so the thread wakes immediately instead of finishing its nap.
  Mutex harvest_mutex;
  CondVar harvest_cv;
  bool harvest_stop PICO_GUARDED_BY(harvest_mutex) = false;
  // sched-exempt: written once by start_coordinators, joined by shutdown;
  // the owner serializes both (documented single-owner API).
  SchedThread harvest_thread;

  Impl(const nn::Graph& g, const partition::Plan& p, RuntimeOptions opts)
      : graph(g), plan(p), options(opts),
        harvester(harvester_options(options)) {}

  /// Record a device's connection failure (idempotent per device): flips
  /// the poison flag, feeds the health engine's liveness state, and logs.
  void note_device_failure(DeviceId device, const std::string& why) {
    {
      MutexLock lock(failed_mutex);
      if (!failed.emplace(device, why).second) return;
    }
    any_failed.store(true, std::memory_order_release);
    PICO_LOG(Error) << "device " << device << " failed: " << why;
    obs::record_event(obs::EventCode::DeviceFailure, device);
    // Idempotent per down episode on the harvester side, so a device the
    // heartbeat already declared down raises no duplicate event.
    harvester.note_device_down(static_cast<int>(device), why);
  }

  bool is_failed(DeviceId device) const {
    if (!any_failed.load(std::memory_order_acquire)) return false;
    MutexLock lock(failed_mutex);
    return failed.count(device) != 0;
  }

  std::vector<DeviceId> failed_devices() const {
    MutexLock lock(failed_mutex);
    std::vector<DeviceId> out;
    for (const auto& [device, why] : failed) out.push_back(device);
    return out;
  }

  /// Fail fast once the runtime is poisoned: touching the remaining
  /// connections would only queue frames a rebuild will orphan.
  void throw_if_degraded() {
    if (!any_failed.load(std::memory_order_acquire)) return;
    DeviceId device = -1;
    std::string why = "device failure pending recovery";
    {
      MutexLock lock(failed_mutex);
      if (!failed.empty()) {
        device = failed.begin()->first;
        why = failed.begin()->second;
      }
    }
    throw DeviceFailure(device, "cluster degraded (device " +
                                    std::to_string(device) + "): " + why);
  }

  /// send() with failure attribution: any transport error condemns the
  /// device and resurfaces as DeviceFailure.
  void guarded_send(DeviceId device, const Message& request) {
    if (is_failed(device)) {
      throw DeviceFailure(device, "send to failed device " +
                                      std::to_string(device));
    }
    try {
      connections.at(device)->send(request);
    } catch (const TransportError& error) {
      note_device_failure(device, error.what());
      throw DeviceFailure(device, "send to device " +
                                      std::to_string(device) +
                                      " failed: " + error.what());
    }
  }

  /// Gather-side recv() with failure attribution and stale-frame skipping:
  /// a scatter aborted mid-gather by another device's death leaves queued
  /// WorkResults from earlier tasks; drop them until this task's result.
  Message recv_result(DeviceId device, std::int64_t task_id) {
    if (is_failed(device)) {
      throw DeviceFailure(device, "recv from failed device " +
                                      std::to_string(device));
    }
    try {
      for (;;) {
        Message result = connections.at(device)->recv();
        PICO_CHECK(result.type == MessageType::WorkResult);
        if (result.task_id == task_id) return result;
        PICO_LOG(Warn) << "dropping stale WorkResult for task "
                       << result.task_id << " from device " << device
                       << " while gathering task " << task_id;
      }
    } catch (const TransportError& error) {
      note_device_failure(device, error.what());
      throw DeviceFailure(device, "recv from device " +
                                      std::to_string(device) +
                                      " failed: " + error.what());
    }
  }

  std::vector<DeviceId> plan_devices() const {
    std::vector<DeviceId> device_ids;
    for (const partition::Stage& stage : plan.stages) {
      for (const partition::DeviceSlice& slice : stage.assignments) {
        bool seen = false;
        for (const DeviceId id : device_ids) seen |= id == slice.device;
        if (!seen) device_ids.push_back(slice.device);
      }
    }
    return device_ids;
  }

  void init_metrics(std::size_t coordinator_count) {
    obs::Registry& registry = obs::Registry::global();
    for (std::size_t s = 0; s < plan.stages.size(); ++s) {
      StageMetrics metrics;
      metrics.scatter =
          &registry.histogram("pico_stage_scatter_seconds", stage_labels(s));
      metrics.gather =
          &registry.histogram("pico_stage_gather_seconds", stage_labels(s));
      metrics.service =
          &registry.histogram("pico_stage_service_seconds", stage_labels(s));
      metrics.compute_critical = &registry.histogram(
          "pico_stage_compute_critical_seconds", stage_labels(s));
      for (const partition::DeviceSlice& slice : plan.stages[s].assignments) {
        const std::vector<obs::Label> labels{
            {"stage", std::to_string(s)},
            {"device", std::to_string(slice.device)}};
        metrics.device_compute[slice.device] =
            &registry.histogram("pico_stage_compute_seconds", labels);
        metrics.device_wire_request[slice.device] =
            &registry.histogram("pico_wire_request_seconds", labels);
        metrics.device_wire_reply[slice.device] =
            &registry.histogram("pico_wire_reply_seconds", labels);
        metrics.device_worker_queue[slice.device] =
            &registry.histogram("pico_worker_queue_seconds", labels);
      }
      stage_metrics.push_back(std::move(metrics));
    }
    for (std::size_t q = 0; q < coordinator_count; ++q) {
      QueueMetrics metrics;
      metrics.wait = &registry.histogram("pico_stage_queue_wait_seconds",
                                         {{"queue", std::to_string(q)}});
      metrics.handoff = &registry.histogram("pico_stage_handoff_seconds",
                                            {{"queue", std::to_string(q)}});
      queue_metrics.push_back(metrics);
    }
    task_latency = &registry.histogram("pico_task_latency_seconds");
    tasks_total = &registry.counter("pico_tasks_completed_total");
  }

  /// External-transport mode: connections were supplied by the caller.
  void start_with_connections(
      std::map<DeviceId, std::unique_ptr<Connection>> supplied) {
    for (const DeviceId id : plan_devices()) {
      const auto it = supplied.find(id);
      PICO_CHECK_MSG(it != supplied.end() && it->second != nullptr,
                     "no connection supplied for device " << id);
      connections.emplace(id, std::move(it->second));
    }
    start_coordinators();
  }

  void start() {
    // One worker (+ dedicated connection) per distinct device in the plan.
    std::vector<DeviceId> device_ids = plan_devices();
    for (const DeviceId id : device_ids) connections.emplace(id, nullptr);

    if (options.transport == TransportKind::InProcess) {
      for (DeviceId id : device_ids) {
        auto [coordinator_end, worker_end] = make_inproc_pair();
        connections[id] = std::move(coordinator_end);
        workers.push_back(
            std::make_unique<Worker>(graph, std::move(worker_end), id));
        workers.back()->start();
      }
    } else {
      TcpListener listener;
      for (DeviceId id : device_ids) {
        // Serial connect/accept keeps the device <-> socket mapping exact.
        auto worker_end = tcp_connect(listener.port());
        connections[id] = listener.accept();
        workers.push_back(
            std::make_unique<Worker>(graph, std::move(worker_end), id));
        workers.back()->start();
      }
    }

    start_coordinators();
  }

  void start_coordinators() {
    // Deadline the coordinator side of every connection (worker ends stay
    // untimed: a worker's recv() idles legitimately between tasks and is
    // unblocked by close() on shutdown).
    net_timeout_ms = resolved_net_timeout_ms(options);
    for (const auto& [device, connection] : connections) {
      if (net_timeout_ms > 0) connection->set_timeout_ms(net_timeout_ms);
      clocks.emplace(device, std::make_shared<obs::ClockOffsetEstimator>());
      gates.emplace(device, std::make_unique<ConnectionGate>());
    }
    // Stage chain: pipelined -> one coordinator per stage; sequential ->
    // one coordinator walking all stages.
    const std::size_t coordinator_count =
        plan.pipelined ? plan.stages.size() : 1;
    init_metrics(coordinator_count);
    wire_harvester();
    for (std::size_t i = 0; i < coordinator_count; ++i) {
      queues.push_back(
          std::make_unique<BoundedQueue<TaskItem>>(options.queue_capacity));
    }
    for (std::size_t i = 0; i < coordinator_count; ++i) {
      coordinators.emplace_back([this, i, coordinator_count] {
        const std::string name = "pico-coord-" + std::to_string(i);
        obs::set_current_thread_name(name.c_str());
        coordinate(i, coordinator_count);
      });
    }
    harvest_ms = resolved_harvest_ms(options);
    if (harvest_ms > 0 && options.harvest_telemetry) {
      harvest_thread = SchedThread([this] {
        obs::set_current_thread_name("pico-harvest");
        harvest_loop();
      });
    }
  }

  /// Point the harvest engine at the metric handles init_metrics resolved
  /// and inject the plan's model predictions.  Runs before any coordinator
  /// or harvest thread starts.
  void wire_harvester() {
    for (std::size_t s = 0; s < plan.stages.size(); ++s) {
      const int stage = static_cast<int>(s);
      StageMetrics& metrics = stage_metrics[s];
      harvester.track_stage_compute_critical(stage, metrics.compute_critical);
      harvester.track_stage_service(stage, metrics.service);
      for (const auto& [device, histogram] : metrics.device_compute) {
        harvester.track_stage_compute(stage, device, histogram);
      }
      for (const auto& [device, request] : metrics.device_wire_request) {
        harvester.track_stage_wire(stage, device, request,
                                   metrics.device_wire_reply.at(device));
      }
    }
    harvester.track_entry_queue_wait(queue_metrics.front().wait);
    harvester.track_tasks_completed(tasks_total);
    if (options.prediction.valid) {
      harvester.set_prediction(options.prediction);
    }
  }

  /// Stamp the v2 trace context + NTP t1 on an outgoing WorkRequest.  Must
  /// run immediately before send() so t1 sits tight against the wire.
  void stamp_request(Message& request, std::int64_t task_id,
                     std::size_t stage_index) {
    request.trace_id = trace_id;
    request.parent_span = stage_span_id(task_id, stage_index);
    request.t_origin_ns = obs::Tracer::now_ns();
  }

  /// Per-WorkResult bookkeeping: feed the device's clock-offset estimator
  /// with the piggybacked quadruple, then attribute the timestamp-derived
  /// splits — request/reply wire time (rebased) and worker-side queueing.
  /// The compute span itself is recorded by the *worker* under the
  /// propagated trace context and harvested at shutdown; the coordinator no
  /// longer synthesizes it (it only falls back to the anchored-duration
  /// guess for a result without timestamps).
  void observe_result(std::size_t stage_index, DeviceId device,
                      const Message& result, std::int64_t t4_ns) {
    if (result.t_send_ns == 0) return;  // no v2 timestamps: nothing to do
    const auto clock_it = clocks.find(device);
    if (clock_it == clocks.end()) return;
    obs::ClockOffsetEstimator& clock = *clock_it->second;
    clock.update({result.t_origin_ns, result.t_recv_ns, result.t_send_ns,
                  t4_ns});
    if (!clock.valid()) return;
    StageMetrics& metrics = stage_metrics[stage_index];
    const std::int64_t t2_local = clock.rebase(result.t_recv_ns);
    const std::int64_t t3_local = clock.rebase(result.t_send_ns);
    // Offset error can push a short wire leg slightly negative; clamp.
    const double wire_request = std::max(
        0.0, to_seconds(t2_local - result.t_origin_ns));
    const double wire_reply = std::max(0.0, to_seconds(t4_ns - t3_local));
    const double worker_queue = std::max(
        0.0, to_seconds(result.t_compute_start_ns - result.t_recv_ns));
    if (auto it = metrics.device_wire_request.find(device);
        it != metrics.device_wire_request.end()) {
      it->second->observe(wire_request);
    }
    if (auto it = metrics.device_wire_reply.find(device);
        it != metrics.device_wire_reply.end()) {
      it->second->observe(wire_reply);
    }
    if (auto it = metrics.device_worker_queue.find(device);
        it != metrics.device_worker_queue.end()) {
      it->second->observe(worker_queue);
    }
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      const std::vector<std::pair<std::string, std::string>> args{
          {"stage", std::to_string(stage_index)},
          {"device", std::to_string(device)}};
      record_interval(tracer, "wire_req", "net", obs::net_track(),
                      result.task_id, result.t_origin_ns,
                      std::max(result.t_origin_ns, t2_local), args);
      record_interval(tracer, "wire_rep", "net", obs::net_track(),
                      result.task_id, std::min(t3_local, t4_ns), t4_ns,
                      args);
    }
  }

  /// Observe one device's per-task compute time (histogram; `fallback_span`
  /// re-creates the old coordinator-synthesized span for results that
  /// carried no worker timestamps).
  void observe_compute(std::size_t stage_index, DeviceId device,
                       std::int64_t task_id, double compute_seconds,
                       bool fallback_span) {
    auto it = stage_metrics[stage_index].device_compute.find(device);
    if (it != stage_metrics[stage_index].device_compute.end()) {
      it->second->observe(compute_seconds);
    }
    obs::Tracer& tracer = obs::Tracer::global();
    if (fallback_span && tracer.enabled()) {
      // The worker only reported a duration; anchor the span so it ends at
      // the moment the result arrived.
      const std::int64_t end_ns = obs::Tracer::now_ns();
      const auto duration_ns =
          static_cast<std::int64_t>(compute_seconds * 1e9);
      record_interval(tracer, "compute", "compute", obs::device_track(device),
                      task_id, end_ns - duration_ns, end_ns,
                      {{"stage", std::to_string(stage_index)},
                       {"device", std::to_string(device)}});
    }
  }

  /// Branch-parallel stage: ship each device its branches' input pieces,
  /// collect full-map branch outputs, stack them channel-wise (the concat).
  Tensor run_branch_stage(std::size_t stage_index,
                          const partition::Stage& stage, const Tensor& input,
                          std::int64_t task_id) {
    const std::vector<partition::Branch> branches =
        partition::block_branches(graph, {stage.first, stage.last});
    PICO_CHECK(!branches.empty());
    const Shape out_shape = graph.node(stage.last).out_shape;
    StageMetrics& metrics = stage_metrics[stage_index];
    // Own this stage's connections for the whole scatter/gather exchange so
    // a concurrent harvest round cannot interleave control-plane frames.
    GateSet gate(gates, stage);
    const std::int64_t scatter_start = obs::Tracer::now_ns();

    struct Sent {
      DeviceId device;
      const partition::Branch* branch;
    };
    std::vector<Sent> sent;
    for (const partition::DeviceSlice& slice : stage.assignments) {
      for (const int index : slice.branches) {
        const partition::Branch& branch =
            branches[static_cast<std::size_t>(index)];
        const Region in_region = partition::branch_input_region(graph, branch);
        const Shape branch_out = graph.node(branch.last).out_shape;
        Message request;
        request.type = MessageType::WorkRequest;
        request.task_id = task_id;
        request.stage_index = static_cast<std::int32_t>(stage_index);
        request.first_node = branch.first;
        request.last_node = branch.last;
        request.in_region = in_region;
        request.out_region =
            Region::full(branch_out.height, branch_out.width);
        request.tensor = extract(input, in_region);
        stamp_request(request, task_id, stage_index);
        guarded_send(slice.device, request);
        sent.push_back({slice.device, &branch});
      }
    }
    const std::int64_t gather_start = obs::Tracer::now_ns();
    metrics.scatter->observe(to_seconds(gather_start - scatter_start));

    // A device may serve several branches; its compute time per task is the
    // sum of its branch executions.
    std::map<DeviceId, double> device_seconds;
    std::map<DeviceId, bool> device_timestamped;
    Tensor out(out_shape);
    for (const Sent& entry : sent) {
      Message result = recv_result(entry.device, task_id);
      const std::int64_t t4 = obs::Tracer::now_ns();
      observe_result(stage_index, entry.device, result, t4);
      device_seconds[entry.device] += result.compute_seconds;
      device_timestamped[entry.device] |= result.t_compute_end_ns != 0;
      const partition::Branch& branch = *entry.branch;
      PICO_CHECK(result.tensor.shape().channels == branch.channels &&
                 result.tensor.shape().height == out_shape.height &&
                 result.tensor.shape().width == out_shape.width);
      for (int c = 0; c < branch.channels; ++c) {
        std::memcpy(out.channel(branch.channel_offset + c),
                    result.tensor.channel(c),
                    sizeof(float) * static_cast<std::size_t>(
                                        out_shape.height) *
                        out_shape.width);
      }
    }
    double critical = 0.0;
    for (const auto& [device, seconds] : device_seconds) {
      observe_compute(stage_index, device, task_id, seconds,
                      /*fallback_span=*/!device_timestamped[device]);
      critical = std::max(critical, seconds);
    }
    metrics.compute_critical->observe(critical);
    metrics.gather->observe(
        to_seconds(obs::Tracer::now_ns() - gather_start));
    return out;
  }

  /// Spatial stage: scatter (haloed) input pieces, gather and stitch.
  Tensor run_spatial_stage(std::size_t stage_index,
                           const partition::Stage& stage, const Tensor& input,
                           std::int64_t task_id) {
    const Shape out_shape = graph.node(stage.last).out_shape;
    StageMetrics& metrics = stage_metrics[stage_index];
    obs::Tracer& tracer = obs::Tracer::global();
    // Own this stage's connections for the whole scatter/gather exchange so
    // a concurrent harvest round cannot interleave control-plane frames.
    GateSet gate(gates, stage);

    // Scatter: send each device its (haloed) input piece.
    const std::int64_t scatter_start = obs::Tracer::now_ns();
    std::vector<const partition::DeviceSlice*> active;
    for (const partition::DeviceSlice& slice : stage.assignments) {
      if (slice.out_region.empty()) continue;
      const Region in_region = nn::segment_input_region(
          graph, stage.first, stage.last, slice.out_region);
      Message request;
      request.type = MessageType::WorkRequest;
      request.task_id = task_id;
      request.stage_index = static_cast<std::int32_t>(stage_index);
      request.first_node = stage.first;
      request.last_node = stage.last;
      request.in_region = in_region;
      request.out_region = slice.out_region;
      request.tensor = extract(input, in_region);
      stamp_request(request, task_id, stage_index);
      guarded_send(slice.device, request);
      active.push_back(&slice);
    }
    const std::int64_t gather_start = obs::Tracer::now_ns();
    metrics.scatter->observe(to_seconds(gather_start - scatter_start));
    if (tracer.enabled()) {
      record_interval(tracer, "scatter", "phase",
                      obs::stage_track(static_cast<int>(stage_index)),
                      task_id, scatter_start, gather_start);
    }

    // Gather + stitch.
    double critical = 0.0;
    std::vector<Placed> pieces;
    pieces.reserve(active.size());
    for (const partition::DeviceSlice* slice : active) {
      Message result = recv_result(slice->device, task_id);
      const std::int64_t t4 = obs::Tracer::now_ns();
      PICO_CHECK(result.out_region == slice->out_region);
      observe_result(stage_index, slice->device, result, t4);
      observe_compute(stage_index, slice->device, task_id,
                      result.compute_seconds,
                      /*fallback_span=*/result.t_compute_end_ns == 0);
      critical = std::max(critical, result.compute_seconds);
      pieces.push_back({result.out_region, std::move(result.tensor)});
    }
    Tensor out = stitch(out_shape, pieces);
    metrics.compute_critical->observe(critical);
    const std::int64_t gather_end = obs::Tracer::now_ns();
    metrics.gather->observe(to_seconds(gather_end - gather_start));
    if (tracer.enabled()) {
      record_interval(tracer, "gather", "phase",
                      obs::stage_track(static_cast<int>(stage_index)),
                      task_id, gather_start, gather_end);
    }
    return out;
  }

  /// Run one stage of the plan for one feature map (scatter/gather/stitch).
  Tensor run_stage(std::size_t stage_index, const partition::Stage& stage,
                   const Tensor& input, std::int64_t task_id) {
    const Shape in_shape = graph.node(stage.first).in_shape;
    PICO_CHECK_MSG(input.shape() == in_shape,
                   "stage input shape " << input.shape() << " != expected "
                                        << in_shape);
    const std::int64_t service_start = obs::Tracer::now_ns();
    Tensor out = stage.kind == partition::StageKind::Branch
                     ? run_branch_stage(stage_index, stage, input, task_id)
                     : run_spatial_stage(stage_index, stage, input, task_id);
    const std::int64_t service_end = obs::Tracer::now_ns();
    stage_metrics[stage_index].service->observe(
        to_seconds(service_end - service_start));
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      record_interval(tracer, "stage", "stage",
                      obs::stage_track(static_cast<int>(stage_index)),
                      task_id, service_start, service_end,
                      {{"stage", std::to_string(stage_index)}});
    }
    return out;
  }

  void coordinate(std::size_t index, std::size_t coordinator_count) {
    obs::Tracer& tracer = obs::Tracer::global();
    for (;;) {
      std::optional<TaskItem> item = queues[index]->pop();
      if (!item) break;  // queue closed and drained
      // A task failure (device death, timeout) condemns that *task*, not
      // the pipeline: the exception lands in the task's future and the
      // loop keeps draining — with the runtime poisoned, every queued
      // task fails fast and the owner gets the whole accepted backlog
      // back as DeviceFailure futures it can re-execute after replanning.
      try {
        const std::int64_t popped_ns = obs::Tracer::now_ns();
        queue_metrics[index].wait->observe(
            to_seconds(popped_ns - item->enqueue_ns));
        if (tracer.enabled()) {
          record_interval(tracer, "queue_wait", "queue",
                          obs::stage_track(static_cast<int>(index)),
                          item->id, item->enqueue_ns, popped_ns);
        }
        throw_if_degraded();
        if (plan.pipelined) {
          item->tensor = run_stage(index, plan.stages[index],
                                   std::move(item->tensor), item->id);
        } else {
          for (std::size_t s = 0; s < plan.stages.size(); ++s) {
            item->tensor = run_stage(s, plan.stages[s],
                                     std::move(item->tensor), item->id);
          }
        }
        if (index + 1 < coordinator_count) {
          // Inter-stage transfer: the push blocks while the downstream
          // queue is full, so its duration is the back-pressure stall.
          const std::int64_t handoff_start = obs::Tracer::now_ns();
          item->enqueue_ns = handoff_start;
          const std::int64_t task_id = item->id;
          queues[index + 1]->push(std::move(*item));
          const std::int64_t handoff_end = obs::Tracer::now_ns();
          queue_metrics[index].handoff->observe(
              to_seconds(handoff_end - handoff_start));
          if (tracer.enabled()) {
            record_interval(tracer, "handoff", "phase",
                            obs::stage_track(static_cast<int>(index)),
                            task_id, handoff_start, handoff_end);
          }
        } else {
          const std::int64_t done_ns = obs::Tracer::now_ns();
          task_latency->observe(to_seconds(done_ns - item->submit_ns));
          tasks_total->add(1);
          if (tracer.enabled()) {
            record_interval(tracer, "task", "task", obs::task_track(),
                            item->id, item->submit_ns, done_ns);
          }
          // Count before fulfilling the promise: infer() returns the moment
          // the future resolves, and tasks_completed() must already cover
          // that task.
          completed.fetch_add(1, std::memory_order_relaxed);
          obs::record_event(obs::EventCode::TaskComplete, item->id);
          note_task_resolved();
          item->promise->set_value(std::move(item->tensor));
        }
      } catch (const std::exception& error) {
        PICO_LOG(Error) << "coordinator " << index << " failed task "
                        << item->id << ": " << error.what();
        // A throwing downstream push() has already move-consumed the item;
        // its promise then travels with it (and the push only throws once
        // that queue is closed, i.e. during teardown).
        if (item->promise) {
          obs::record_event(obs::EventCode::TaskFail, item->id);
          note_task_resolved();
          item->promise->set_exception(std::current_exception());
        }
      }
    }
    if (index + 1 < coordinator_count) queues[index + 1]->close();
  }

  /// Fold per-worker request counts and per-connection transfer totals into
  /// the global registry (labelled by device).  Called once, after every
  /// coordinator and worker thread has been joined.
  void publish_device_totals() {
    obs::Registry& registry = obs::Registry::global();
    for (const auto& worker : workers) {
      if (worker->device() < 0) continue;
      registry
          .counter("pico_device_requests_total",
                   {{"device", std::to_string(worker->device())}})
          .add(worker->requests_served());
    }
    for (const auto& [device, connection] : connections) {
      const ConnectionStats stats = connection->stats();
      const std::vector<obs::Label> labels{
          {"device", std::to_string(device)}};
      // Coordinator-side view: "sent" flows coordinator -> device.
      registry.counter("pico_net_bytes_sent_total", labels)
          .add(stats.bytes_sent);
      registry.counter("pico_net_bytes_received_total", labels)
          .add(stats.bytes_received);
      registry.counter("pico_net_frames_sent_total", labels)
          .add(stats.frames_sent);
      registry.counter("pico_net_frames_received_total", labels)
          .add(stats.frames_received);
      registry.gauge("pico_net_send_seconds", labels)
          .set(stats.send_seconds);
      registry.gauge("pico_net_recv_seconds", labels)
          .set(stats.recv_seconds);
    }
  }

  /// One harvest round: pull metrics + span deltas + clock pings from every
  /// worker over the transport, feed the health engine, inject rebased
  /// spans into the global tracer (a subsequent Tracer::snapshot() is the
  /// merged cluster-wide trace so far) and fold the per-worker results into
  /// the cluster accumulator.  Safe mid-run: each worker's round trip runs
  /// under that device's ConnectionGate, so it alternates cleanly with the
  /// coordinators' scatter/gather exchanges; rounds themselves (periodic
  /// thread, harvest_now callers, the final shutdown round) are serialized
  /// by round_gate.  The span cursors carried in the TraceDump exchange
  /// keep repeated pulls from ever double-counting a span.
  void harvest_round() {
    GateLock round(round_gate);
    obs::Registry& registry = obs::Registry::global();
    obs::Tracer& tracer = obs::Tracer::global();
    for (auto& [device, connection] : connections) {
      // A condemned device gets no more round trips (they would only time
      // out again under the round gate); feed the health engine a synthetic
      // miss instead so its missed-round counter and snapshot stay live.
      if (is_failed(device)) {
        obs::WorkerTelemetry dead;
        dead.device = device;
        dead.reachable = false;
        harvester.note_worker(dead);
        continue;
      }
      Connection* conn = connection.get();
      obs::HarvestEndpoint endpoint;
      endpoint.device = device;
      endpoint.clock = clocks.at(device).get();
      {
        MutexLock lock(cursor_mutex);
        endpoint.trace_cursor = cursors[device];
        endpoint.event_cursor = event_cursors[device];
      }
      endpoint.ping = [conn] {
        Message ping;
        ping.type = MessageType::Ping;
        ping.t_origin_ns = obs::Tracer::now_ns();
        conn->send(ping);
        Message pong = expect_reply(*conn, MessageType::Pong);
        return obs::ClockSample{pong.t_origin_ns, pong.t_recv_ns,
                                pong.t_send_ns, obs::Tracer::now_ns()};
      };
      endpoint.fetch_metrics = [conn] {
        Message request;
        request.type = MessageType::MetricsDump;
        conn->send(request);
        Message reply = expect_reply(*conn, MessageType::MetricsDump);
        return std::string(reply.blob.begin(), reply.blob.end());
      };
      endpoint.fetch_trace_chunk = [conn](std::uint64_t cursor) {
        Message request;
        request.type = MessageType::TraceDump;
        request.span_cursor = cursor;
        conn->send(request);
        Message reply = expect_reply(*conn, MessageType::TraceDump);
        obs::TraceChunk chunk;
        chunk.base = reply.span_cursor_base;
        chunk.next = reply.span_cursor;
        chunk.spans = obs::decode_spans(reply.blob.data(),
                                        reply.blob.size());
        return chunk;
      };
      endpoint.fetch_event_chunk = [conn](std::uint64_t cursor) {
        Message request;
        request.type = MessageType::EventDump;
        request.span_cursor = cursor;  // event cursor rides the same field
        conn->send(request);
        Message reply = expect_reply(*conn, MessageType::EventDump);
        obs::EventChunk chunk =
            obs::decode_events(reply.blob.data(), reply.blob.size());
        // Trust the frame-level cursors over the blob header (same values
        // from a well-behaved worker; the frame is what the protocol acks).
        chunk.base = reply.span_cursor_base;
        chunk.next = reply.span_cursor;
        return chunk;
      };
      obs::WorkerTelemetry harvested = [&] {
        GateLock gate(*gates.at(device));
        return obs::harvest_worker(endpoint, options.harvest_pings);
      }();
      {
        MutexLock lock(cursor_mutex);
        cursors[device] = harvested.next_cursor;
        event_cursors[device] = harvested.next_event_cursor;
      }
      const std::vector<obs::Label> labels{
          {"device", std::to_string(device)}};
      registry.gauge("pico_clock_offset_ns", labels)
          .set(static_cast<double>(harvested.offset_ns));
      registry.gauge("pico_clock_rtt_ns", labels)
          .set(static_cast<double>(harvested.rtt_ns));
      registry.gauge("pico_clock_error_bound_ns", labels)
          .set(static_cast<double>(harvested.error_bound_ns));
      registry.gauge("pico_clock_samples", labels)
          .set(static_cast<double>(harvested.clock_samples));
      if (tracer.enabled()) {
        for (const obs::SpanRecord& span : harvested.spans) {
          tracer.record(span);
        }
      }
      harvester.note_worker(harvested);
      telemetry.add(std::move(harvested));
    }
    harvester.complete_round(obs::Tracer::now_ns());
    {
      // Journal the round: round number, how many devices answered, how
      // many the plan uses — a postmortem shows at a glance whether the
      // cluster was whole when it died.
      std::int64_t reachable = 0;
      for (const auto& [device, connection] : connections) {
        if (!is_failed(device)) ++reachable;
      }
      obs::record_event(obs::EventCode::HarvestRound, harvester.rounds(),
                        reachable,
                        static_cast<std::int64_t>(connections.size()));
    }
    // Heartbeat verdicts feed back into the data plane: a device the policy
    // just declared down (heartbeat_missed_rounds consecutive failed round
    // trips) poisons the runtime exactly like a mid-task transport error,
    // so a silently hung worker is caught even between submissions.
    for (const int device : harvester.down_devices()) {
      note_device_failure(static_cast<DeviceId>(device),
                          "declared down by heartbeat policy");
    }
  }

  /// Background periodic-harvest loop: nap for the period (or until
  /// shutdown pokes the condvar), then run a round.  The flag is re-checked
  /// after the wait so a shutdown signalled mid-nap skips the final
  /// loop-driven round — shutdown() runs its own, after the coordinators
  /// are drained.
  void harvest_loop() {
    const std::int64_t period_ns =
        static_cast<std::int64_t>(harvest_ms) * 1000000;
    for (;;) {
      {
        MutexLock lock(harvest_mutex);
        if (harvest_stop) return;
        harvest_cv.wait_for(harvest_mutex, period_ns);
        if (harvest_stop) return;
      }
      harvest_round();
    }
  }

  void shutdown() {
    if (stopped.exchange(true)) return;
    queues.front()->close();
    for (SchedThread& t : coordinators) {
      if (t.joinable()) t.join();
    }
    // Retire the periodic harvester before the final round so rounds and
    // the Shutdown sends below cannot interleave.
    {
      MutexLock lock(harvest_mutex);
      harvest_stop = true;
      harvest_cv.notify_all();
    }
    if (harvest_thread.joinable()) harvest_thread.join();
    if (options.harvest_telemetry) harvest_round();
    // The Shutdown message carries the final span cursor as an ack, so the
    // worker's graceful flush_to_tracer only covers spans no harvest round
    // ever delivered.
    std::map<DeviceId, std::uint64_t> final_cursors;
    {
      MutexLock lock(cursor_mutex);
      final_cursors = cursors;
    }
    for (auto& [id, connection] : connections) {
      // A failed device gets no goodbye: the send would at best time out
      // under the gate and at worst block a no-timeout shutdown forever.
      if (is_failed(id)) continue;
      Message bye;
      bye.type = MessageType::Shutdown;
      const auto it = final_cursors.find(id);
      if (it != final_cursors.end()) bye.span_cursor = it->second;
      // Hold the device's gate for the send: a harvest_now() round that
      // slipped past the stopped check finishes its gated round trip before
      // the Shutdown frame enters the connection (single gate, never a
      // second — no ordering constraint with the GateSet holders, which
      // have all been joined above).
      GateLock gate(*gates.at(id));
      try {
        connection->send(bye);
      } catch (const std::exception&) {
        // Worker already gone.
      }
    }
    for (auto& worker : workers) worker->stop();
    publish_device_totals();
  }
};

PipelineRuntime::PipelineRuntime(const nn::Graph& graph,
                                 const partition::Plan& plan,
                                 RuntimeOptions options)
    : impl_(std::make_unique<Impl>(graph, plan, options)) {
  PICO_CHECK_MSG(graph.finalized(), "graph not finalized");
  PICO_CHECK_MSG(!plan.stages.empty(), "plan has no stages");
  impl_->start();
}

PipelineRuntime::PipelineRuntime(
    const nn::Graph& graph, const partition::Plan& plan,
    std::map<DeviceId, std::unique_ptr<Connection>> connections,
    RuntimeOptions options)
    : impl_(std::make_unique<Impl>(graph, plan, options)) {
  PICO_CHECK_MSG(graph.finalized(), "graph not finalized");
  PICO_CHECK_MSG(!plan.stages.empty(), "plan has no stages");
  impl_->start_with_connections(std::move(connections));
}

PipelineRuntime::~PipelineRuntime() { shutdown(); }

std::future<Tensor> PipelineRuntime::submit(Tensor input) {
  PICO_CHECK_MSG(!impl_->stopped.load(), "submit after shutdown");
  TaskItem item;
  item.id = impl_->next_task.fetch_add(1);
  item.tensor = std::move(input);
  item.promise = std::make_shared<std::promise<Tensor>>();
  item.submit_ns = obs::Tracer::now_ns();
  item.enqueue_ns = item.submit_ns;
  std::future<Tensor> future = item.promise->get_future();
  obs::record_event(obs::EventCode::TaskAccept, item.id);
  impl_->note_task_admitted();
  impl_->queues.front()->push(std::move(item));
  return future;
}

Tensor PipelineRuntime::infer(const Tensor& input) {
  return submit(input).get();
}

void PipelineRuntime::shutdown() { impl_->shutdown(); }

const obs::ClusterTelemetry& PipelineRuntime::cluster_telemetry() const {
  return impl_->telemetry;
}

bool PipelineRuntime::harvest_now() {
  if (impl_->stopped.load()) return false;
  impl_->harvest_round();
  return true;
}

obs::HealthSnapshot PipelineRuntime::health() const {
  return impl_->harvester.snapshot();
}

long long PipelineRuntime::tasks_completed() const {
  return impl_->completed.load(std::memory_order_relaxed);
}

std::vector<DeviceId> PipelineRuntime::failed_devices() const {
  return impl_->failed_devices();
}

}  // namespace pico::runtime
