#include "runtime/pipeline.hpp"

#include <atomic>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"
#include "nn/receptive.hpp"
#include "partition/branches.hpp"
#include "runtime/channel.hpp"
#include "runtime/worker.hpp"
#include "tensor/slice.hpp"

namespace pico::runtime {

namespace {

struct TaskItem {
  std::int64_t id = 0;
  Tensor tensor;
  std::shared_ptr<std::promise<Tensor>> promise;
};

}  // namespace

struct PipelineRuntime::Impl {
  const nn::Graph& graph;
  partition::Plan plan;
  RuntimeOptions options;

  std::map<DeviceId, std::unique_ptr<Connection>> connections;
  std::vector<std::unique_ptr<Worker>> workers;

  std::vector<std::unique_ptr<BoundedQueue<TaskItem>>> queues;
  std::vector<std::thread> coordinators;

  std::atomic<std::int64_t> next_task{0};
  std::atomic<long long> completed{0};
  std::atomic<bool> stopped{false};

  Impl(const nn::Graph& g, const partition::Plan& p, RuntimeOptions opts)
      : graph(g), plan(p), options(opts) {}

  std::vector<DeviceId> plan_devices() const {
    std::vector<DeviceId> device_ids;
    for (const partition::Stage& stage : plan.stages) {
      for (const partition::DeviceSlice& slice : stage.assignments) {
        bool seen = false;
        for (const DeviceId id : device_ids) seen |= id == slice.device;
        if (!seen) device_ids.push_back(slice.device);
      }
    }
    return device_ids;
  }

  /// External-transport mode: connections were supplied by the caller.
  void start_with_connections(
      std::map<DeviceId, std::unique_ptr<Connection>> supplied) {
    for (const DeviceId id : plan_devices()) {
      const auto it = supplied.find(id);
      PICO_CHECK_MSG(it != supplied.end() && it->second != nullptr,
                     "no connection supplied for device " << id);
      connections.emplace(id, std::move(it->second));
    }
    start_coordinators();
  }

  void start() {
    // One worker (+ dedicated connection) per distinct device in the plan.
    std::vector<DeviceId> device_ids = plan_devices();
    for (const DeviceId id : device_ids) connections.emplace(id, nullptr);

    if (options.transport == TransportKind::InProcess) {
      for (DeviceId id : device_ids) {
        auto [coordinator_end, worker_end] = make_inproc_pair();
        connections[id] = std::move(coordinator_end);
        workers.push_back(
            std::make_unique<Worker>(graph, std::move(worker_end)));
        workers.back()->start();
      }
    } else {
      TcpListener listener;
      for (DeviceId id : device_ids) {
        // Serial connect/accept keeps the device <-> socket mapping exact.
        auto worker_end = tcp_connect(listener.port());
        connections[id] = listener.accept();
        workers.push_back(
            std::make_unique<Worker>(graph, std::move(worker_end)));
        workers.back()->start();
      }
    }

    start_coordinators();
  }

  void start_coordinators() {
    // Stage chain: pipelined -> one coordinator per stage; sequential ->
    // one coordinator walking all stages.
    const std::size_t coordinator_count =
        plan.pipelined ? plan.stages.size() : 1;
    for (std::size_t i = 0; i < coordinator_count; ++i) {
      queues.push_back(
          std::make_unique<BoundedQueue<TaskItem>>(options.queue_capacity));
    }
    for (std::size_t i = 0; i < coordinator_count; ++i) {
      coordinators.emplace_back([this, i, coordinator_count] {
        coordinate(i, coordinator_count);
      });
    }
  }

  /// Branch-parallel stage: ship each device its branches' input pieces,
  /// collect full-map branch outputs, stack them channel-wise (the concat).
  Tensor run_branch_stage(const partition::Stage& stage,
                          const Tensor& input) {
    const std::vector<partition::Branch> branches =
        partition::block_branches(graph, {stage.first, stage.last});
    PICO_CHECK(!branches.empty());
    const Shape out_shape = graph.node(stage.last).out_shape;

    struct Sent {
      DeviceId device;
      const partition::Branch* branch;
    };
    std::vector<Sent> sent;
    for (const partition::DeviceSlice& slice : stage.assignments) {
      for (const int index : slice.branches) {
        const partition::Branch& branch =
            branches[static_cast<std::size_t>(index)];
        const Region in_region = partition::branch_input_region(graph, branch);
        const Shape branch_out = graph.node(branch.last).out_shape;
        Message request;
        request.type = MessageType::WorkRequest;
        request.first_node = branch.first;
        request.last_node = branch.last;
        request.in_region = in_region;
        request.out_region =
            Region::full(branch_out.height, branch_out.width);
        request.tensor = extract(input, in_region);
        connections.at(slice.device)->send(request);
        sent.push_back({slice.device, &branch});
      }
    }

    Tensor out(out_shape);
    for (const Sent& entry : sent) {
      Message result = connections.at(entry.device)->recv();
      PICO_CHECK(result.type == MessageType::WorkResult);
      const partition::Branch& branch = *entry.branch;
      PICO_CHECK(result.tensor.shape().channels == branch.channels &&
                 result.tensor.shape().height == out_shape.height &&
                 result.tensor.shape().width == out_shape.width);
      for (int c = 0; c < branch.channels; ++c) {
        std::memcpy(out.channel(branch.channel_offset + c),
                    result.tensor.channel(c),
                    sizeof(float) * static_cast<std::size_t>(
                                        out_shape.height) *
                        out_shape.width);
      }
    }
    return out;
  }

  /// Run one stage of the plan for one feature map (scatter/gather/stitch).
  Tensor run_stage(const partition::Stage& stage, const Tensor& input) {
    const Shape in_shape = graph.node(stage.first).in_shape;
    PICO_CHECK_MSG(input.shape() == in_shape,
                   "stage input shape " << input.shape() << " != expected "
                                        << in_shape);
    if (stage.kind == partition::StageKind::Branch) {
      return run_branch_stage(stage, input);
    }
    const Shape out_shape = graph.node(stage.last).out_shape;

    // Scatter: send each device its (haloed) input piece.
    std::vector<const partition::DeviceSlice*> active;
    for (const partition::DeviceSlice& slice : stage.assignments) {
      if (slice.out_region.empty()) continue;
      const Region in_region = nn::segment_input_region(
          graph, stage.first, stage.last, slice.out_region);
      Message request;
      request.type = MessageType::WorkRequest;
      request.first_node = stage.first;
      request.last_node = stage.last;
      request.in_region = in_region;
      request.out_region = slice.out_region;
      request.tensor = extract(input, in_region);
      connections.at(slice.device)->send(request);
      active.push_back(&slice);
    }

    // Gather + stitch.
    std::vector<Placed> pieces;
    pieces.reserve(active.size());
    for (const partition::DeviceSlice* slice : active) {
      Message result = connections.at(slice->device)->recv();
      PICO_CHECK(result.type == MessageType::WorkResult);
      PICO_CHECK(result.out_region == slice->out_region);
      pieces.push_back({result.out_region, std::move(result.tensor)});
    }
    return stitch(out_shape, pieces);
  }

  void coordinate(std::size_t index, std::size_t coordinator_count) {
    try {
      for (;;) {
        std::optional<TaskItem> item = queues[index]->pop();
        if (!item) break;  // queue closed and drained
        if (plan.pipelined) {
          item->tensor =
              run_stage(plan.stages[index], std::move(item->tensor));
        } else {
          for (const partition::Stage& stage : plan.stages) {
            item->tensor = run_stage(stage, std::move(item->tensor));
          }
        }
        if (index + 1 < coordinator_count) {
          queues[index + 1]->push(std::move(*item));
        } else {
          item->promise->set_value(std::move(item->tensor));
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    } catch (const std::exception& error) {
      PICO_LOG(Error) << "coordinator " << index
                      << " failed: " << error.what();
      // Unblock downstream and any waiting futures.
      if (index + 1 < coordinator_count) queues[index + 1]->close();
    }
    if (index + 1 < coordinator_count) queues[index + 1]->close();
  }

  void shutdown() {
    if (stopped.exchange(true)) return;
    queues.front()->close();
    for (std::thread& t : coordinators) {
      if (t.joinable()) t.join();
    }
    for (auto& [id, connection] : connections) {
      Message bye;
      bye.type = MessageType::Shutdown;
      try {
        connection->send(bye);
      } catch (const std::exception&) {
        // Worker already gone.
      }
    }
    for (auto& worker : workers) worker->stop();
  }
};

PipelineRuntime::PipelineRuntime(const nn::Graph& graph,
                                 const partition::Plan& plan,
                                 RuntimeOptions options)
    : impl_(std::make_unique<Impl>(graph, plan, options)) {
  PICO_CHECK_MSG(graph.finalized(), "graph not finalized");
  PICO_CHECK_MSG(!plan.stages.empty(), "plan has no stages");
  impl_->start();
}

PipelineRuntime::PipelineRuntime(
    const nn::Graph& graph, const partition::Plan& plan,
    std::map<DeviceId, std::unique_ptr<Connection>> connections,
    RuntimeOptions options)
    : impl_(std::make_unique<Impl>(graph, plan, options)) {
  PICO_CHECK_MSG(graph.finalized(), "graph not finalized");
  PICO_CHECK_MSG(!plan.stages.empty(), "plan has no stages");
  impl_->start_with_connections(std::move(connections));
}

PipelineRuntime::~PipelineRuntime() { shutdown(); }

std::future<Tensor> PipelineRuntime::submit(Tensor input) {
  PICO_CHECK_MSG(!impl_->stopped.load(), "submit after shutdown");
  TaskItem item;
  item.id = impl_->next_task.fetch_add(1);
  item.tensor = std::move(input);
  item.promise = std::make_shared<std::promise<Tensor>>();
  std::future<Tensor> future = item.promise->get_future();
  impl_->queues.front()->push(std::move(item));
  return future;
}

Tensor PipelineRuntime::infer(const Tensor& input) {
  return submit(input).get();
}

void PipelineRuntime::shutdown() { impl_->shutdown(); }

long long PipelineRuntime::tasks_completed() const {
  return impl_->completed.load(std::memory_order_relaxed);
}

}  // namespace pico::runtime
