// Churn-surviving runtime: a PipelineRuntime wrapped in an accepted-task
// ledger and an online re-adaptation loop.
//
// The PipelineRuntime fails fast on device death (DeviceFailure poisons it;
// see pipeline.hpp) but cannot shrink itself — its plan is fixed at
// construction.  This layer owns the membership view: every accepted task
// keeps a pristine copy of its input, a completer thread watches the inner
// futures, and on the first failure it
//   1. drains the in-flight ledger off the poisoned runtime (fulfilled
//      results are delivered, failures join the redo list),
//   2. removes the dead devices from the surviving cluster,
//   3. re-runs the scheme planner — Alg. 1 DP + Alg. 2 greedy adaptation —
//      over the survivors (weights re-distribute implicitly: each new
//      worker owns its segment of the shared graph),
//   4. builds a fresh PipelineRuntime on the new plan, and
//   5. re-executes every unfinished accepted task in submission order.
// No accepted inference is dropped while at least one device survives and
// the task stays under max_task_attempts.  Telemetry and health events of
// retired runtimes fold into the accumulators (the AdaptiveRuntime epoch
// idiom), so DeviceDown history survives the rebuild.
//
// Exactly-once caveat: promise resolution is exactly-once, worker compute
// is at-least-once — a re-executed task may have partially (or even fully)
// computed on the dead epoch.  Inference is idempotent, so this is
// invisible in the outputs.
//
// Hang recovery (a wedged-but-connected worker) additionally needs
// RuntimeOptions::net_timeout_ms / PICO_NET_TIMEOUT_MS > 0; without a
// deadline only EOF-detectable deaths (crash, close) are recoverable.
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/types.hpp"
#include "nn/graph.hpp"
#include "obs/health.hpp"
#include "obs/remote.hpp"
#include "partition/plan.hpp"
#include "runtime/pipeline.hpp"
#include "tensor/tensor.hpp"

namespace pico::runtime {

struct ResilientOptions {
  /// Options for each inner PipelineRuntime epoch (transport, harvest
  /// cadence, net timeout, heartbeat policy...).
  RuntimeOptions runtime;
  /// Network model fed to the default replanner.
  NetworkModel network;
  /// Replanner invoked over the survivors after every membership change.
  /// Default (unset): partition::pico_plan — homogenize, Alg. 1 DP,
  /// Alg. 2 greedy adaptation.  Must throw if no feasible plan exists.
  std::function<partition::Plan(const nn::Graph&, const Cluster&)> replan;
  /// Idle-completer poll period for failures that strike *between* tasks
  /// (heartbeat DeviceDown with an empty ledger).  0 disables polling (the
  /// completer then only reacts to task traffic and shutdown — what the
  /// sched models use to stay free of modeled-timeout spins).
  int liveness_poll_ms = 50;
  /// A task failing this many times (each on a freshly planned epoch) gets
  /// its last failure delivered instead of another retry.
  int max_task_attempts = 4;
};

/// Drop-in PipelineRuntime replacement that survives worker death.
/// Thread-compatible like the inner runtime: one submitter thread; the
/// internal completer thread is invisible to callers.
class ResilientRuntime {
 public:
  ResilientRuntime(const nn::Graph& graph, const Cluster& cluster,
                   ResilientOptions options = {});
  ~ResilientRuntime();

  ResilientRuntime(const ResilientRuntime&) = delete;
  ResilientRuntime& operator=(const ResilientRuntime&) = delete;

  /// Enqueue one inference.  The future resolves with the final feature map
  /// — possibly computed by a later epoch than the one that accepted it —
  /// or with the terminal error (cluster exhausted / attempts exceeded).
  std::future<Tensor> submit(Tensor input);

  /// Synchronous convenience wrapper around submit().
  Tensor infer(const Tensor& input);

  /// Drain every accepted task (recovering if needed), then stop
  /// (idempotent; also run by the destructor).
  void shutdown();

  /// Re-admit a device previously declared dead: membership is rebuilt and
  /// the planner re-run at the next completer step (asynchronous).  Unknown
  /// or live devices are ignored.
  void rejoin(DeviceId device);

  /// Health snapshot of the current epoch with the full retired-epoch event
  /// history (DeviceDown, Recovered, ...) prepended.
  obs::HealthSnapshot health() const;
  /// One synchronous harvest round on the current epoch (false once
  /// shutdown began or the cluster is lost).
  bool harvest_now();

  /// Worker telemetry accumulated across all epochs so far (retired epochs
  /// folded in; the live epoch's telemetry joins on shutdown()).
  const obs::ClusterTelemetry& cluster_telemetry() const;

  long long tasks_completed() const;
  /// Completed replans (== retired epochs).
  int replans() const;
  /// Devices currently considered dead (full-cluster ids), ascending.
  std::vector<DeviceId> dead_devices() const;
  /// Current surviving-member view of the cluster.  Note: Cluster
  /// construction re-indexes positionally, so this cluster's own device ids
  /// are 0..size()-1, not full-cluster ids.
  Cluster survivors() const;
  /// The active epoch's plan, remapped into full-cluster device ids — the
  /// one id space every epoch, chaos hook, metric label and health event
  /// shares.
  partition::Plan plan() const;

 private:
  struct Impl;
  // sched-exempt: set once by the constructor; the pointer itself is never
  // reseated.  Impl's own mutable state is guarded internally.
  std::unique_ptr<Impl> impl_;
};

}  // namespace pico::runtime
