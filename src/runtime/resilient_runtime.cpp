#include "runtime/resilient_runtime.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/mutex.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "partition/pico_dp.hpp"
#include "sched/hooks.hpp"
#ifdef PICO_SCHED
#include "sched/explorer.hpp"
#endif

namespace pico::runtime {

namespace {

/// future.get() that stays visible to the schedule explorer: std::future's
/// internal wait is uninstrumented, so under exploration a blocking get()
/// would stall the explorer.  Poll-with-yield instead.
Tensor wait_get(std::future<Tensor>& future) {
#ifdef PICO_SCHED
  if (sched::under_exploration()) {
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      sched::yield("resilient future poll");
    }
  }
#endif
  return future.get();
}

}  // namespace

struct ResilientRuntime::Impl {
  /// One accepted inference.  `input` is a pristine copy so the task can be
  /// re-submitted to a fresh epoch after the one that held it died.
  struct Pending {
    std::int64_t id = 0;
    Tensor input;
    std::shared_ptr<std::promise<Tensor>> outer;
    std::future<Tensor> inner;
    /// Epoch `inner` was submitted on; null when awaiting (re)submission.
    std::shared_ptr<PipelineRuntime> epoch;
    int attempts = 0;
  };

  Impl(const nn::Graph& g, const Cluster& cluster, ResilientOptions opts)
      : graph(g), options(std::move(opts)), full_cluster(cluster) {
    obs::Registry& registry = obs::Registry::global();
    recovery_seconds = &registry.histogram("pico_recovery_seconds");
    replans_total = &registry.counter("pico_replans_total");
    {
      MutexLock lock(mutex);
      survivors_ = full_cluster;
      for (const Device& device : full_cluster.devices()) {
        survivor_globals_.push_back(device.id);
      }
      plan_ = make_plan(survivors_, survivor_globals_);
      epoch_ = std::make_shared<PipelineRuntime>(graph, plan_, options.runtime);
    }
    obs::record_event(obs::EventCode::EpochStart, /*epoch=*/0,
                      static_cast<std::int64_t>(full_cluster.size()));
    completer_ = SchedThread([this] { completer_loop(); });
  }

  /// Cluster construction re-indexes device ids positionally, so a plan
  /// over the survivor cluster speaks survivor-local ids.  Remap it back to
  /// full-cluster ids before building the epoch: workers, chaos hooks,
  /// telemetry labels, failure reports and health events then stay in one
  /// stable id space across every epoch.  (PipelineRuntime only uses plan
  /// device ids as map keys — it never indexes a Cluster — so gaps are
  /// fine.)
  static partition::Plan to_global_ids(partition::Plan plan,
                                       const std::vector<DeviceId>& globals) {
    for (partition::Stage& stage : plan.stages) {
      for (partition::DeviceSlice& slice : stage.assignments) {
        slice.device = globals.at(static_cast<std::size_t>(slice.device));
      }
    }
    return plan;
  }

  partition::Plan make_plan(const Cluster& cluster,
                            const std::vector<DeviceId>& globals) const {
    partition::Plan local = options.replan
                                ? options.replan(graph, cluster)
                                : partition::pico_plan(graph, cluster,
                                                       options.network);
    return to_global_ids(std::move(local), globals);
  }

  // --- submission ---------------------------------------------------------

  std::future<Tensor> submit(Tensor input) {
    Pending task;
    task.input = std::move(input);  // the ledger keeps the pristine copy
    task.outer = std::make_shared<std::promise<Tensor>>();
    std::future<Tensor> result = task.outer->get_future();

    std::shared_ptr<PipelineRuntime> target;
    {
      MutexLock lock(mutex);
      PICO_CHECK_MSG(!stopping_, "submit() after shutdown()");
      if (cluster_lost_) {
        task.outer->set_exception(std::make_exception_ptr(DeviceFailure(
            -1, "cluster exhausted: no surviving devices to plan over")));
        return result;
      }
      task.id = next_id_++;
      // During a recovery window the fresh epoch is not up yet; the task
      // enters the ledger unsubmitted and recover() resubmits it.
      if (!recovering_) target = epoch_;
    }
    if (target != nullptr) {
      try {
        task.inner = target->submit(task.input);
        task.epoch = target;
      } catch (const std::exception& e) {
        // Poisoned epoch — the completer will notice and recover; the task
        // just waits in the ledger unsubmitted.
        PICO_LOG(Warn) << "resilient submit deferred (task " << task.id
                       << "): " << e.what();
        task.epoch = nullptr;
      }
    }
    {
      MutexLock lock(mutex);
      ledger_.push_back(std::move(task));
      cv.notify_all();
    }
    return result;
  }

  // --- completer ----------------------------------------------------------

  void completer_loop() {
    obs::set_current_thread_name("pico-complete");
    for (;;) {
      Pending task;
      bool have_task = false;
      bool need_recovery = false;
      std::shared_ptr<PipelineRuntime> current;
      {
        MutexLock lock(mutex);
        while (!stopping_ && ledger_.empty() && !membership_dirty_) {
          if (options.liveness_poll_ms > 0) {
            cv.wait_for(mutex, static_cast<std::int64_t>(
                                   options.liveness_poll_ms) *
                                   1'000'000);
            break;  // wake to probe the epoch for heartbeat deaths
          }
          cv.wait(mutex);
        }
        if (membership_dirty_) {
          need_recovery = true;
        } else if (!ledger_.empty()) {
          task = std::move(ledger_.front());
          ledger_.pop_front();
          have_task = true;
        } else if (stopping_) {
          return;  // ledger drained — every accepted task is resolved
        }
        current = epoch_;
      }

      if (!have_task && !need_recovery) {
        // Idle poll: a heartbeat DeviceDown with no in-flight work still
        // needs a replan so the next submit lands on a healthy epoch.
        if (current != nullptr && !current->failed_devices().empty()) {
          recover({});
        }
        continue;
      }
      if (need_recovery) {
        if (have_task) {  // impossible by construction, but keep it safe
          MutexLock lock(mutex);
          ledger_.push_front(std::move(task));
        }
        recover({});
        continue;
      }

      // Late (re)submission for tasks accepted while an epoch was down.
      if (task.epoch == nullptr) {
        if (current == nullptr) {
          fail_task(task, std::make_exception_ptr(DeviceFailure(
                              -1, "cluster exhausted: no surviving devices")));
          continue;
        }
        try {
          task.inner = current->submit(task.input);
          task.epoch = current;
        } catch (const std::exception&) {
          task.attempts++;
          obs::record_event(obs::EventCode::TaskRetry, task.id, task.attempts,
                            replans_.load(std::memory_order_relaxed));
          recover_one(std::move(task));
          continue;
        }
      }

      try {
        Tensor output = wait_get(task.inner);
        completed_.fetch_add(1, std::memory_order_relaxed);
        task.outer->set_value(std::move(output));
      } catch (const std::exception& e) {
        PICO_LOG(Warn) << "resilient task " << task.id
                       << " failed (attempt " << task.attempts + 1
                       << "): " << e.what();
        task.attempts++;
        task.epoch = nullptr;
        obs::record_event(obs::EventCode::TaskRetry, task.id, task.attempts,
                          replans_.load(std::memory_order_relaxed));
        recover_one(std::move(task));
      }
    }
  }

  void recover_one(Pending task) {
    std::deque<Pending> redo;
    redo.push_back(std::move(task));
    recover(std::move(redo));
  }

  void fail_task(Pending& task, std::exception_ptr error) {
    if (task.outer) task.outer->set_exception(std::move(error));
  }

  // --- recovery -----------------------------------------------------------

  /// Drain the poisoned epoch, shrink membership, replan over the
  /// survivors, rebuild, resubmit.  `redo` seeds the redo list with tasks
  /// whose failure triggered this recovery.  Runs on the completer thread
  /// only; all blocking work happens outside the mutex.
  void recover(std::deque<Pending> redo) {
    const auto t0 = std::chrono::steady_clock::now();
    std::shared_ptr<PipelineRuntime> old;
    std::deque<Pending> stolen;
    {
      MutexLock lock(mutex);
      recovering_ = true;
      membership_dirty_ = false;
      old = epoch_;
      stolen.swap(ledger_);
    }

    // Harvest whatever the dying epoch still resolves: tasks that finished
    // before the failure deliver normally, the rest join the redo list.
    for (Pending& task : stolen) {
      if (task.epoch == nullptr || !task.inner.valid()) {
        redo.push_back(std::move(task));
        continue;
      }
      try {
        Tensor output = wait_get(task.inner);
        completed_.fetch_add(1, std::memory_order_relaxed);
        task.outer->set_value(std::move(output));
      } catch (const std::exception&) {
        task.attempts++;
        task.epoch = nullptr;
        obs::record_event(obs::EventCode::TaskRetry, task.id, task.attempts,
                          replans_.load(std::memory_order_relaxed));
        redo.push_back(std::move(task));
      }
    }

    // Tasks over the attempt budget get their terminal error now.
    std::deque<Pending> retry;
    for (Pending& task : redo) {
      if (task.attempts >= options.max_task_attempts) {
        PICO_LOG(Error) << "resilient task " << task.id << " dropped after "
                        << task.attempts << " attempts";
        fail_task(task,
                  std::make_exception_ptr(DeviceFailure(
                      -1, "task failed on " + std::to_string(task.attempts) +
                              " consecutive epochs")));
      } else {
        retry.push_back(std::move(task));
      }
    }

    std::vector<DeviceId> newly_dead;
    if (old != nullptr) {
      newly_dead = old->failed_devices();
      obs::record_event(obs::EventCode::EpochRetire,
                        replans_.load(std::memory_order_relaxed),
                        static_cast<std::int64_t>(newly_dead.size()));
      old->shutdown();
      // Fold the retired epoch's telemetry and health history into the
      // accumulators (the AdaptiveRuntime epoch idiom) so DeviceDown events
      // survive the rebuild.
      for (obs::WorkerTelemetry& worker : old->cluster_telemetry().workers()) {
        telemetry_.add(std::move(worker));
      }
      obs::HealthSnapshot history = old->health();
      MutexLock lock(mutex);
      past_events_.insert(past_events_.end(), history.events.begin(),
                          history.events.end());
    }

    // Shrink membership.  A recovery triggered with no observed device
    // failure (rejoin(), or a pure future failure) keeps the current view.
    Cluster survivors;
    std::vector<DeviceId> globals;
    {
      MutexLock lock(mutex);
      for (const DeviceId device : newly_dead) {
        if (std::find(dead_.begin(), dead_.end(), device) == dead_.end()) {
          dead_.push_back(device);
        }
      }
      std::sort(dead_.begin(), dead_.end());
      std::vector<Device> kept;
      std::vector<DeviceId> kept_globals;
      for (const Device& device : full_cluster.devices()) {
        if (std::find(dead_.begin(), dead_.end(), device.id) == dead_.end()) {
          kept_globals.push_back(device.id);
          kept.push_back(device);
        }
      }
      survivors_ = Cluster(std::move(kept));
      survivor_globals_ = std::move(kept_globals);
      survivors = survivors_;
      globals = survivor_globals_;
    }

    // Replan + rebuild over the survivors (blocking; outside the mutex).
    std::shared_ptr<PipelineRuntime> fresh;
    partition::Plan plan;
    std::exception_ptr planning_error;
    if (survivors.size() > 0) {
      try {
        plan = make_plan(survivors, globals);
        fresh = std::make_shared<PipelineRuntime>(graph, plan,
                                                  options.runtime);
      } catch (const std::exception& e) {
        PICO_LOG(Error) << "replan over " << survivors.size()
                        << " survivor(s) failed: " << e.what();
        planning_error = std::current_exception();
      }
    }

    {
      MutexLock lock(mutex);
      if (fresh == nullptr) {
        cluster_lost_ = true;
        epoch_ = nullptr;
        recovering_ = false;
        for (Pending& task : retry) {
          fail_task(task, planning_error
                              ? planning_error
                              : std::make_exception_ptr(DeviceFailure(
                                    -1,
                                    "cluster exhausted: no surviving "
                                    "devices to plan over")));
        }
        // Tasks submitted during the recovery window fail on dequeue (the
        // completer sees epoch_ == nullptr).
        cv.notify_all();
        PICO_LOG(Error) << "cluster lost: resilient runtime is terminal";
        return;
      }
      epoch_ = fresh;
      plan_ = plan;
      recovering_ = false;
      // Redo tasks go to the FRONT in submission order: they were accepted
      // before anything queued during the recovery window.
      for (auto it = retry.rbegin(); it != retry.rend(); ++it) {
        ledger_.push_front(std::move(*it));
      }
      cv.notify_all();
    }
    const int epoch_seq = replans_.fetch_add(1, std::memory_order_relaxed) + 1;
    obs::record_event(obs::EventCode::EpochStart, epoch_seq,
                      static_cast<std::int64_t>(survivors.size()));
    replans_total->add(1);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    recovery_seconds->observe(seconds);
    PICO_LOG(Warn) << "recovered over " << survivors.size()
                   << " survivor(s) in " << seconds << " s (plan "
                   << plan.scheme << ", " << retry.size()
                   << " task(s) re-queued)";
  }

  // --- teardown / read side ----------------------------------------------

  void shutdown() {
    if (shutdown_done_.exchange(true)) return;
    {
      MutexLock lock(mutex);
      stopping_ = true;
      cv.notify_all();
    }
    if (completer_.joinable()) completer_.join();
    std::shared_ptr<PipelineRuntime> last;
    {
      MutexLock lock(mutex);
      last = epoch_;
      epoch_ = nullptr;
    }
    if (last != nullptr) {
      last->shutdown();
      for (obs::WorkerTelemetry& worker :
           last->cluster_telemetry().workers()) {
        telemetry_.add(std::move(worker));
      }
      // Keep the final epoch's full snapshot (rounds, device rows, ...) so
      // health() stays meaningful after shutdown — callers read it for the
      // post-run report.  The accumulated history is merged in exactly once.
      obs::HealthSnapshot final_snapshot = last->health();
      MutexLock lock(mutex);
      final_snapshot.events.insert(final_snapshot.events.begin(),
                                   past_events_.begin(), past_events_.end());
      past_events_ = final_snapshot.events;
      final_health_ = std::move(final_snapshot);
      have_final_health_ = true;
    }
  }

  void rejoin(DeviceId device) {
    MutexLock lock(mutex);
    auto it = std::find(dead_.begin(), dead_.end(), device);
    if (it == dead_.end()) return;
    dead_.erase(it);
    obs::HealthEvent event;
    event.kind = obs::HealthEventKind::Recovered;
    event.device = device;
    event.detail = "device re-admitted via rejoin()";
    past_events_.push_back(event);
    membership_dirty_ = true;  // completer replans over the wider cluster
    cv.notify_all();
  }

  obs::HealthSnapshot health() const {
    std::shared_ptr<PipelineRuntime> current;
    std::vector<obs::HealthEvent> history;
    {
      MutexLock lock(mutex);
      if (have_final_health_) return final_health_;
      current = epoch_;
      history = past_events_;
    }
    obs::HealthSnapshot out;
    if (current != nullptr) out = current->health();
    out.events.insert(out.events.begin(), history.begin(), history.end());
    return out;
  }

  bool harvest_now() {
    std::shared_ptr<PipelineRuntime> current;
    {
      MutexLock lock(mutex);
      if (stopping_ || recovering_) return false;
      current = epoch_;
    }
    if (current == nullptr) return false;
    return current->harvest_now();
  }

  std::vector<DeviceId> dead_devices() const {
    MutexLock lock(mutex);
    return dead_;
  }

  Cluster survivors() const {
    MutexLock lock(mutex);
    return survivors_;
  }

  partition::Plan plan() const {
    MutexLock lock(mutex);
    return plan_;
  }

  const nn::Graph& graph;
  const ResilientOptions options;
  const Cluster full_cluster;

  mutable Mutex mutex;
  CondVar cv;
  Cluster survivors_ PICO_GUARDED_BY(mutex);
  /// survivors_ position -> full-cluster device id (see to_global_ids).
  std::vector<DeviceId> survivor_globals_ PICO_GUARDED_BY(mutex);
  std::vector<DeviceId> dead_ PICO_GUARDED_BY(mutex);
  partition::Plan plan_ PICO_GUARDED_BY(mutex);
  std::shared_ptr<PipelineRuntime> epoch_ PICO_GUARDED_BY(mutex);
  std::deque<Pending> ledger_ PICO_GUARDED_BY(mutex);
  bool stopping_ PICO_GUARDED_BY(mutex) = false;
  bool recovering_ PICO_GUARDED_BY(mutex) = false;
  bool membership_dirty_ PICO_GUARDED_BY(mutex) = false;
  bool cluster_lost_ PICO_GUARDED_BY(mutex) = false;
  std::int64_t next_id_ PICO_GUARDED_BY(mutex) = 0;
  std::vector<obs::HealthEvent> past_events_ PICO_GUARDED_BY(mutex);
  /// The last epoch's health snapshot, captured at shutdown() with the full
  /// event history merged in; health() returns it once the epochs are gone.
  obs::HealthSnapshot final_health_ PICO_GUARDED_BY(mutex);
  bool have_final_health_ PICO_GUARDED_BY(mutex) = false;

  obs::ClusterTelemetry telemetry_;  // internally locked
  std::atomic<long long> completed_{0};
  std::atomic<int> replans_{0};
  std::atomic<bool> shutdown_done_{false};

  obs::Histogram* recovery_seconds = nullptr;  // set once in ctor
  obs::Counter* replans_total = nullptr;       // set once in ctor

  // sched-exempt: started by the constructor, joined exactly once by
  // shutdown(); no concurrent access to the handle itself.
  SchedThread completer_;
};

ResilientRuntime::ResilientRuntime(const nn::Graph& graph,
                                   const Cluster& cluster,
                                   ResilientOptions options)
    : impl_(std::make_unique<Impl>(graph, cluster, std::move(options))) {}

ResilientRuntime::~ResilientRuntime() { shutdown(); }

std::future<Tensor> ResilientRuntime::submit(Tensor input) {
  return impl_->submit(std::move(input));
}

Tensor ResilientRuntime::infer(const Tensor& input) {
  std::future<Tensor> result = impl_->submit(input);
  return wait_get(result);
}

void ResilientRuntime::shutdown() { impl_->shutdown(); }

void ResilientRuntime::rejoin(DeviceId device) { impl_->rejoin(device); }

obs::HealthSnapshot ResilientRuntime::health() const { return impl_->health(); }

bool ResilientRuntime::harvest_now() { return impl_->harvest_now(); }

const obs::ClusterTelemetry& ResilientRuntime::cluster_telemetry() const {
  return impl_->telemetry_;
}

long long ResilientRuntime::tasks_completed() const {
  return impl_->completed_.load(std::memory_order_relaxed);
}

int ResilientRuntime::replans() const {
  return impl_->replans_.load(std::memory_order_relaxed);
}

std::vector<DeviceId> ResilientRuntime::dead_devices() const {
  return impl_->dead_devices();
}

Cluster ResilientRuntime::survivors() const { return impl_->survivors(); }

partition::Plan ResilientRuntime::plan() const { return impl_->plan(); }

}  // namespace pico::runtime
