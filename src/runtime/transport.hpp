// Transports: how coordinators talk to device workers.
//
//  - In-process: a pair of bounded queues moving Messages by value.  Fast,
//    used by default in tests and examples.
//  - TCP: real loopback sockets with length-prefixed frames — the same
//    distributed glue the paper's Raspberry-Pi framework uses (TCP/IP
//    sockets, §IV-D), so serialization, framing, and partial reads/writes
//    are genuinely exercised.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "runtime/channel.hpp"
#include "runtime/message.hpp"

namespace pico::runtime {

/// Cumulative per-connection transfer accounting.  `*_seconds` is wall time
/// spent inside send()/recv() — for recv that includes time blocked waiting
/// for the peer, which on a coordinator endpoint is the gather wait and on a
/// worker endpoint is idle time.  In-process connections count frames and
/// (serialized-equivalent) bytes but do not time their queue operations.
struct ConnectionStats {
  std::int64_t frames_sent = 0;
  std::int64_t frames_received = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t bytes_received = 0;
  double send_seconds = 0.0;
  double recv_seconds = 0.0;
};

/// Bidirectional, blocking, message-oriented connection endpoint.
/// recv() blocks until a message arrives; throws TransportError when the
/// peer closes.  Thread-compatible: at most one sender and one receiver
/// thread per endpoint.
class Connection {
 public:
  virtual ~Connection() = default;
  virtual void send(const Message& message) = 0;
  virtual Message recv() = 0;
  virtual void close() = 0;
  /// Transfer totals so far; safe to call concurrently with send/recv.
  virtual ConnectionStats stats() const { return {}; }
  /// Per-operation deadline for send()/recv(); past it they throw
  /// TimeoutError instead of blocking.  0 (the default) blocks forever.
  /// Safe to call concurrently with send/recv; applies from the next
  /// operation on.
  virtual void set_timeout_ms(std::int64_t /*timeout_ms*/) {}
  /// True once close() has been called on this endpoint (or, for the
  /// in-process transport, on the peer).  Advisory: a racing recv() may
  /// still complete.
  virtual bool closed() const { return false; }
};

/// Two connected in-process endpoints.
std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
make_inproc_pair();

/// Listening TCP socket (port 0 = ephemeral).  Binds 127.0.0.1 by default;
/// pass "0.0.0.0" (or a specific interface address) to accept connections
/// from other machines.
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port = 0,
                       const std::string& bind_host = "127.0.0.1");
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }
  /// Blocks for one inbound connection.
  std::unique_ptr<Connection> accept();

 private:
  // sched-exempt: set by the constructor, read by accept()/port(), closed
  // by the destructor — a listener is owned and driven by one thread.
  int fd_ = -1;
  // sched-exempt: immutable after construction.
  std::uint16_t port_ = 0;
};

/// Connect to a listener on 127.0.0.1 (loopback default for tests).
std::unique_ptr<Connection> tcp_connect(std::uint16_t port);

/// Connect to a listener on `host` (name or numeric address, resolved via
/// getaddrinfo) — how a worker on another machine joins the cluster.
std::unique_ptr<Connection> tcp_connect(const std::string& host,
                                        std::uint16_t port);

enum class TransportKind { InProcess, Tcp };

}  // namespace pico::runtime
