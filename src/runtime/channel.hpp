// Bounded blocking MPMC queue — the backbone of the in-process transport and
// of the inter-stage queues in the pipeline runtime (the paper's Fig. 6
// input/output queues).
//
// Locking discipline is statically enforced: every mutable member is
// PICO_GUARDED_BY(mutex_), so a clang build with -Wthread-safety rejects
// any access outside a MutexLock scope (ROADMAP keeps the runtime
// TSan-clean; this catches the same class of bug at compile time).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>

#include "common/error.hpp"
#include "common/mutex.hpp"
#include "sched/hooks.hpp"

namespace pico::runtime {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity = kUnbounded)
      : capacity_(capacity) {
    PICO_CHECK(capacity >= 1);
  }

  /// Blocks while full.  Throws TransportError if the queue is closed.
  void push(T value) {
    PICO_SCHED_OP("BoundedQueue::push");
    MutexLock lock(mutex_);
    while (!closed_ && items_.size() >= capacity_) not_full_.wait(mutex_);
    if (closed_) throw TransportError("push on closed queue");
    items_.push_back(std::move(value));
    not_empty_.notify_one();
  }

  /// Blocks while empty.  Returns nullopt once closed and drained.
  std::optional<T> pop() {
    PICO_SCHED_OP("BoundedQueue::pop");
    MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) not_empty_.wait(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// pop() with a deadline: blocks at most `timeout_ns` while the queue is
  /// open and empty.  Returns nullopt either because the queue closed and
  /// drained (*timed_out = false) or because the deadline passed with no
  /// item (*timed_out = true).  timeout_ns <= 0 means block forever.
  std::optional<T> pop_for(std::int64_t timeout_ns, bool* timed_out) {
    if (timed_out != nullptr) *timed_out = false;
    if (timeout_ns <= 0) return pop();
    PICO_SCHED_OP("BoundedQueue::pop_for");
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::nanoseconds(timeout_ns);
    MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        if (timed_out != nullptr) *timed_out = true;
        return std::nullopt;
      }
      const std::int64_t remaining_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(deadline - now)
              .count();
      not_empty_.wait_for(mutex_, remaining_ns);
    }
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Wake all waiters; subsequent pushes throw, pops drain then nullopt.
  void close() {
    PICO_SCHED_OP("BoundedQueue::close");
    MutexLock lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

  static constexpr std::size_t kUnbounded = static_cast<std::size_t>(-1);

 private:
  mutable Mutex mutex_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ PICO_GUARDED_BY(mutex_);
  const std::size_t capacity_;
  bool closed_ PICO_GUARDED_BY(mutex_) = false;
};

}  // namespace pico::runtime
