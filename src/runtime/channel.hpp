// Bounded blocking MPMC queue — the backbone of the in-process transport and
// of the inter-stage queues in the pipeline runtime (the paper's Fig. 6
// input/output queues).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "common/error.hpp"

namespace pico::runtime {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity = kUnbounded)
      : capacity_(capacity) {
    PICO_CHECK(capacity >= 1);
  }

  /// Blocks while full.  Throws TransportError if the queue is closed.
  void push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) throw TransportError("push on closed queue");
    items_.push_back(std::move(value));
    not_empty_.notify_one();
  }

  /// Blocks while empty.  Returns nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Wake all waiters; subsequent pushes throw, pops drain then nullopt.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  static constexpr std::size_t kUnbounded = static_cast<std::size_t>(-1);

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace pico::runtime
