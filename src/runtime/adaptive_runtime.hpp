// Adaptive runtime — APICO (§IV-C) wired to the real threaded runtime.
//
// Holds one candidate plan per scheme (typically OFL and PICO, as in the
// paper) and runs whichever the controller currently prefers.  Arrivals are
// counted per wall-clock window; at each window boundary the EWMA estimate
// λ̂ is refreshed and the predicted-average-latency winner chosen.  A switch
// drains the in-flight tasks (model segments must be redeployed on the
// devices), tears the current PipelineRuntime down, and builds the next —
// the same drain-then-swap semantics the simulator models.
//
// Thread-safety: submit()/infer() may be called from one producer thread;
// the switch decision runs inline on the producer's submit path (no timer
// thread — the decision point is task admission, which is when it matters).
#pragma once

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "adaptive/apico.hpp"
#include "nn/graph.hpp"
#include "runtime/pipeline.hpp"

namespace pico::runtime {

struct AdaptiveRuntimeOptions {
  double beta = 0.3;       ///< Eq. 15
  Seconds window = 10.0;   ///< wall-clock re-evaluation interval
  RuntimeOptions runtime;  ///< transport etc. for the inner runtimes
};

class AdaptiveRuntime {
 public:
  /// `candidates` as produced by adaptive::make_candidate; index 0 runs
  /// first.  The graph must outlive the runtime.
  AdaptiveRuntime(const nn::Graph& graph,
                  std::vector<adaptive::Candidate> candidates,
                  AdaptiveRuntimeOptions options = {});
  ~AdaptiveRuntime();

  AdaptiveRuntime(const AdaptiveRuntime&) = delete;
  AdaptiveRuntime& operator=(const AdaptiveRuntime&) = delete;

  /// Enqueue one inference on the currently active plan; may first perform
  /// a due scheme re-evaluation (and a drain + switch).
  std::future<Tensor> submit(Tensor input);
  Tensor infer(const Tensor& input);

  const std::string& current_scheme() const;

  /// Worker telemetry accumulated across every plan epoch: each drained
  /// PipelineRuntime's shutdown harvest is folded in here before the next
  /// plan activates, so one report covers the whole adaptive run.
  const obs::ClusterTelemetry& cluster_telemetry() const {
    return telemetry_;
  }

  /// Run one synchronous harvest round on the active plan's runtime (see
  /// PipelineRuntime::harvest_now); the periodic thread — if harvest_ms is
  /// set — restarts automatically with each plan epoch.  False once
  /// shutdown has begun.
  bool harvest_now();

  /// Health snapshot from the active plan's harvest engine.  Structured
  /// events raised during earlier plan epochs are retained and prepended,
  /// so the event log spans plan switches (windows and λ̂ restart with each
  /// epoch — a new plan means new per-stage baselines).
  obs::HealthSnapshot health() const;

  int switches() const { return switches_; }
  double estimated_rate() const { return controller_.estimated_rate(); }
  /// Scheme names in activation order (starts with the initial scheme).
  const std::vector<std::string>& scheme_history() const {
    return history_;
  }

  void shutdown();

 private:
  void maybe_reevaluate();
  void activate(std::size_t candidate_index);

  const nn::Graph& graph_;
  // sched-exempt-begin: single-producer by contract (see class comment) —
  // every member below is touched only from the one thread that calls
  // submit()/infer()/shutdown(); the inner PipelineRuntime owns all
  // cross-thread state.
  AdaptiveRuntimeOptions options_;
  adaptive::ApicoController controller_;
  std::size_t active_index_ = 0;
  std::unique_ptr<PipelineRuntime> active_;
  std::chrono::steady_clock::time_point window_start_;
  int window_arrivals_ = 0;
  int switches_ = 0;
  std::vector<std::string> history_;
  obs::ClusterTelemetry telemetry_;
  /// Health events inherited from drained plan epochs (see health()).
  std::vector<obs::HealthEvent> past_events_;
  bool stopped_ = false;
  // sched-exempt-end
};

}  // namespace pico::runtime
