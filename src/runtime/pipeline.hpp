// Pipeline runtime — the paper's Fig. 6 workflow, executable.
//
// One worker thread per device in the plan.  For pipelined plans each stage
// gets its own coordinator thread: it pops a feature map from its input
// queue, splits it into the per-device input pieces (with halo, via
// receptive-field propagation), scatters them to the stage's devices,
// gathers and stitches the produced pieces, and pushes the stage output to
// the next stage's queue.  Sequential plans (LW/EFL/OFL) use a single
// coordinator that walks the stages in order — the same devices may then
// appear in several stages.
//
// This runtime computes real convolutions; tests assert that its output is
// bit-identical to single-device execution for every scheme and model.
#pragma once

#include <future>
#include <map>
#include <memory>

#include "common/types.hpp"
#include "nn/graph.hpp"
#include "obs/remote.hpp"
#include "partition/plan.hpp"
#include "runtime/transport.hpp"
#include "tensor/tensor.hpp"

namespace pico::runtime {

struct RuntimeOptions {
  TransportKind transport = TransportKind::InProcess;
  /// Inter-stage queue capacity (back-pressure).
  std::size_t queue_capacity = 8;
  /// Pull worker metrics/trace buffers (MetricsDump/TraceDump, preceded by
  /// a Ping burst that refreshes the per-device clock offset) during
  /// shutdown, before the Shutdown message — see cluster_telemetry().
  bool harvest_telemetry = true;
  /// Pings per worker in the shutdown harvest (tight clock probes on top of
  /// the quadruples piggybacked on every WorkResult).
  int harvest_pings = 4;
};

class PipelineRuntime {
 public:
  PipelineRuntime(const nn::Graph& graph, const partition::Plan& plan,
                  RuntimeOptions options = {});

  /// Bring-your-own-transport: the caller supplies one established
  /// Connection per device in the plan (e.g. TCP sockets to worker
  /// *processes* or remote hosts running runtime::serve_blocking).  No local
  /// workers are spawned; shutdown() sends Shutdown on every connection.
  PipelineRuntime(const nn::Graph& graph, const partition::Plan& plan,
                  std::map<DeviceId, std::unique_ptr<Connection>> connections,
                  RuntimeOptions options = {});

  ~PipelineRuntime();

  PipelineRuntime(const PipelineRuntime&) = delete;
  PipelineRuntime& operator=(const PipelineRuntime&) = delete;

  /// Enqueue one inference; the future resolves with the final feature map.
  std::future<Tensor> submit(Tensor input);

  /// Synchronous convenience wrapper around submit().
  Tensor infer(const Tensor& input);

  /// Drain and stop all threads (idempotent; also run by the destructor).
  /// With harvest_telemetry on, first pulls every worker's metrics and span
  /// buffer over the transport; harvested spans are rebased onto the
  /// coordinator clock and injected into the global tracer, so a subsequent
  /// Tracer::snapshot() is the merged cluster-wide trace.
  void shutdown();

  /// Telemetry harvested from the workers at shutdown (empty before
  /// shutdown, or when harvest_telemetry is off).
  const obs::ClusterTelemetry& cluster_telemetry() const;

  long long tasks_completed() const;

 private:
  struct Impl;
  // sched-exempt: set once by the constructor; the pointer itself is never
  // reseated.  Impl's own mutable state is guarded internally (pipeline.cpp).
  std::unique_ptr<Impl> impl_;
};

}  // namespace pico::runtime
