// Pipeline runtime — the paper's Fig. 6 workflow, executable.
//
// One worker thread per device in the plan.  For pipelined plans each stage
// gets its own coordinator thread: it pops a feature map from its input
// queue, splits it into the per-device input pieces (with halo, via
// receptive-field propagation), scatters them to the stage's devices,
// gathers and stitches the produced pieces, and pushes the stage output to
// the next stage's queue.  Sequential plans (LW/EFL/OFL) use a single
// coordinator that walks the stages in order — the same devices may then
// appear in several stages.
//
// This runtime computes real convolutions; tests assert that its output is
// bit-identical to single-device execution for every scheme and model.
#pragma once

#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "nn/graph.hpp"
#include "obs/harvester.hpp"
#include "obs/health.hpp"
#include "obs/remote.hpp"
#include "partition/plan.hpp"
#include "runtime/transport.hpp"
#include "tensor/tensor.hpp"

namespace pico::runtime {

/// A device's connection failed (timeout, EOF, socket error) while the
/// runtime was using it.  Carries the device so a recovery layer can replan
/// around it; the first DeviceFailure poisons the runtime — every
/// subsequent task fails fast with this exception until the owner rebuilds
/// over the survivors (see ResilientRuntime).
class DeviceFailure : public TransportError {
 public:
  DeviceFailure(DeviceId device, const std::string& what)
      : TransportError(what), device_(device) {}
  DeviceId device() const { return device_; }

 private:
  const DeviceId device_;
};

struct RuntimeOptions {
  TransportKind transport = TransportKind::InProcess;
  /// Inter-stage queue capacity (back-pressure).
  std::size_t queue_capacity = 8;
  /// Pull worker metrics/trace buffers (MetricsDump/TraceDump, preceded by
  /// a Ping burst that refreshes the per-device clock offset) at least once
  /// per run: continuously when harvest_ms > 0, and always one final round
  /// during shutdown, before the Shutdown message — see cluster_telemetry().
  bool harvest_telemetry = true;
  /// Pings per worker per harvest round (tight clock probes on top of the
  /// quadruples piggybacked on every WorkResult).
  int harvest_pings = 4;
  /// Continuous-harvest period in milliseconds: > 0 starts a background
  /// thread that pulls every worker's metrics/trace deltas mid-run (span
  /// cursors prevent double-counting) and feeds the health engine.  0 keeps
  /// the legacy shutdown-only harvest.  The PICO_HARVEST_MS environment
  /// variable, when set, overrides this field at construction.
  int harvest_ms = 0;
  /// Harvest rounds per rolling metric window (window duration ≈
  /// window_rounds × harvest period).
  int window_rounds = 8;
  /// Per-operation transport deadline applied to every device connection:
  /// past it, a blocked send/recv (coordinator scatter/gather, harvester
  /// round trips) throws TimeoutError instead of hanging on a dead or
  /// wedged worker.  0 (the default) blocks forever — hang detection then
  /// rests entirely on the heartbeat's EOF-based signals.  The
  /// PICO_NET_TIMEOUT_MS environment variable, when set, overrides this
  /// field at construction.
  std::int64_t net_timeout_ms = 0;
  /// Heartbeat policy: consecutive failed harvest round trips before a
  /// device is declared dead (DeviceDown) — detection latency is bounded by
  /// heartbeat_missed_rounds × harvest period + net timeout.
  int heartbeat_missed_rounds = 2;
  /// Straggler-detector thresholds (robust z / peer-ratio fallback).
  obs::StragglerOptions straggler{};
  /// Online model-checker thresholds (residual EWMA, drift trip count).
  obs::ModelChecker::Options model{};
  /// Eq. 5–11 predictions for the online model checker, computed by the
  /// caller via partition::plan_cost (the obs layer cannot link partition).
  /// Leave invalid to skip predicted-vs-measured checks; the Thm. 2 M/D/1
  /// check then falls back to the measured stage period.
  obs::ModelPrediction prediction{};
};

class PipelineRuntime {
 public:
  PipelineRuntime(const nn::Graph& graph, const partition::Plan& plan,
                  RuntimeOptions options = {});

  /// Bring-your-own-transport: the caller supplies one established
  /// Connection per device in the plan (e.g. TCP sockets to worker
  /// *processes* or remote hosts running runtime::serve_blocking).  No local
  /// workers are spawned; shutdown() sends Shutdown on every connection.
  PipelineRuntime(const nn::Graph& graph, const partition::Plan& plan,
                  std::map<DeviceId, std::unique_ptr<Connection>> connections,
                  RuntimeOptions options = {});

  ~PipelineRuntime();

  PipelineRuntime(const PipelineRuntime&) = delete;
  PipelineRuntime& operator=(const PipelineRuntime&) = delete;

  /// Enqueue one inference; the future resolves with the final feature map.
  std::future<Tensor> submit(Tensor input);

  /// Synchronous convenience wrapper around submit().
  Tensor infer(const Tensor& input);

  /// Drain and stop all threads (idempotent; also run by the destructor).
  /// With harvest_telemetry on, first pulls every worker's metrics and span
  /// buffer over the transport; harvested spans are rebased onto the
  /// coordinator clock and injected into the global tracer, so a subsequent
  /// Tracer::snapshot() is the merged cluster-wide trace.
  void shutdown();

  /// Telemetry harvested from the workers (accumulating across continuous
  /// harvest rounds; empty until the first round — which is the shutdown
  /// round when harvest_ms is 0 — or when harvest_telemetry is off).
  const obs::ClusterTelemetry& cluster_telemetry() const;

  /// Run one synchronous harvest round right now: every worker is pulled
  /// (metrics, span deltas, clock pings), the rolling windows advance and
  /// the straggler/model-drift detectors run.  Independent of the periodic
  /// thread — rounds are serialized internally.  Returns false once
  /// shutdown has begun (no round is attempted).
  bool harvest_now();

  /// Live cluster-health snapshot assembled by the harvest engine (empty —
  /// zero rounds — until the first harvest round).
  obs::HealthSnapshot health() const;

  long long tasks_completed() const;

  /// Devices whose connection failed mid-run (data-plane error or heartbeat
  /// DeviceDown promotion), ascending.  Non-empty means the runtime is
  /// poisoned: in-flight and future tasks fail fast with DeviceFailure and
  /// the owner should rebuild over the survivors.
  std::vector<DeviceId> failed_devices() const;

 private:
  struct Impl;
  // sched-exempt: set once by the constructor; the pointer itself is never
  // reseated.  Impl's own mutable state is guarded internally (pipeline.cpp).
  std::unique_ptr<Impl> impl_;
};

}  // namespace pico::runtime
