#include "runtime/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace pico::runtime {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw TransportError(std::string(what) + ": " + std::strerror(errno));
}

// ---------------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------------

class InProcConnection : public Connection {
 public:
  InProcConnection(std::shared_ptr<BoundedQueue<Message>> tx,
                   std::shared_ptr<BoundedQueue<Message>> rx)
      : tx_(std::move(tx)), rx_(std::move(rx)) {}

  ~InProcConnection() override { close(); }

  void send(const Message& message) override { tx_->push(message); }

  Message recv() override {
    std::optional<Message> message = rx_->pop();
    if (!message) throw TransportError("in-process peer closed");
    return std::move(*message);
  }

  void close() override {
    tx_->close();
    rx_->close();
  }

 private:
  std::shared_ptr<BoundedQueue<Message>> tx_;
  std::shared_ptr<BoundedQueue<Message>> rx_;
};

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

void write_all(int fd, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, bytes + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Returns false on clean EOF at a frame boundary.
bool read_all(int fd, void* data, std::size_t size) {
  auto* bytes = static_cast<std::uint8_t*>(data);
  std::size_t received = 0;
  while (received < size) {
    const ssize_t n = ::recv(fd, bytes + received, size - received, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (received == 0) return false;
      throw TransportError("peer closed mid-frame");
    }
    received += static_cast<std::size_t>(n);
  }
  return true;
}

class TcpConnection : public Connection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpConnection() override {
    close();
    // By destruction time every thread using this connection has been
    // joined, so releasing the descriptor cannot race with a blocked recv.
    ::close(fd_);
  }

  void send(const Message& message) override {
    PICO_CHECK_MSG(!closed_.load(std::memory_order_acquire),
                   "send on closed connection");
    const std::vector<std::uint8_t> payload = serialize(message);
    const std::uint64_t length = payload.size();
    write_all(fd_, &length, sizeof(length));
    write_all(fd_, payload.data(), payload.size());
  }

  Message recv() override {
    PICO_CHECK_MSG(!closed_.load(std::memory_order_acquire),
                   "recv on closed connection");
    std::uint64_t length = 0;
    if (!read_all(fd_, &length, sizeof(length))) {
      throw TransportError("tcp peer closed");
    }
    PICO_CHECK_MSG(length <= (1ull << 32), "oversized frame");
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(length));
    if (!read_all(fd_, payload.data(), payload.size())) {
      throw TransportError("tcp peer closed mid-frame");
    }
    return deserialize(payload.data(), payload.size());
  }

  // close() races with a recv() blocked on the socket in another thread by
  // design (Worker::stop unblocks the worker this way), so it must not
  // release the descriptor: a concurrent ::close() both races on the fd and
  // could hand a recycled descriptor to the blocked reader.  shutdown() only
  // wakes the peer (recv returns 0 -> clean-EOF TransportError); the fd is
  // released in the destructor, after joins.  exchange() makes repeated
  // close() calls harmless.
  void close() override {
    if (!closed_.exchange(true, std::memory_order_acq_rel)) {
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

 private:
  const int fd_;
  std::atomic<bool> closed_{false};
};

}  // namespace

std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
make_inproc_pair() {
  auto a_to_b = std::make_shared<BoundedQueue<Message>>();
  auto b_to_a = std::make_shared<BoundedQueue<Message>>();
  return {std::make_unique<InProcConnection>(a_to_b, b_to_a),
          std::make_unique<InProcConnection>(b_to_a, a_to_b)};
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw_errno("bind");
  }
  if (::listen(fd_, 64) < 0) throw_errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<Connection> TcpListener::accept() {
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) throw_errno("accept");
  return std::make_unique<TcpConnection>(fd);
}

std::unique_ptr<Connection> tcp_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect");
  }
  return std::make_unique<TcpConnection>(fd);
}

}  // namespace pico::runtime
