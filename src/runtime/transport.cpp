#include "runtime/transport.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/error.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"

namespace pico::runtime {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw TransportError(std::string(what) + ": " + std::strerror(errno));
}

void atomic_add_seconds(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

/// Serialized size of a message without actually serializing it (used by the
/// in-process transport, which moves Messages by value).
std::int64_t wire_size(const Message& message) {
  // Mirrors serialize() (PIC2): fixed header (magic, type, ids, compute
  // seconds, trace context, five timestamps), regions, blob length + blob,
  // shape, tensor payload.
  constexpr std::int64_t kHeader =
      4 + 4 + 8 + 4 + 4 + 4 + 8 + (8 + 8) + 5 * 8 + 32 + 8 + 12;
  return kHeader + static_cast<std::int64_t>(message.blob.size()) +
         static_cast<std::int64_t>(message.tensor.shape().elements()) * 4;
}

// ---------------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------------

class InProcConnection : public Connection {
 public:
  InProcConnection(std::shared_ptr<BoundedQueue<Message>> tx,
                   std::shared_ptr<BoundedQueue<Message>> rx)
      : tx_(std::move(tx)), rx_(std::move(rx)) {}

  ~InProcConnection() override { close(); }

  void send(const Message& message) override {
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(wire_size(message), std::memory_order_relaxed);
    tx_->push(message);
  }

  Message recv() override {
    const std::int64_t timeout_ms =
        timeout_ms_.load(std::memory_order_relaxed);
    bool timed_out = false;
    std::optional<Message> message =
        rx_->pop_for(timeout_ms * 1'000'000, &timed_out);
    if (!message) {
      // In-process frames arrive whole, so a timeout is never mid-frame.
      if (timed_out) {
        obs::record_event(obs::EventCode::TransportTimeout, 0);
        throw TimeoutError("in-process recv timed out");
      }
      throw TransportError("in-process peer closed");
    }
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    bytes_received_.fetch_add(wire_size(*message),
                              std::memory_order_relaxed);
    return std::move(*message);
  }

  void close() override {
    tx_->close();
    rx_->close();
  }

  void set_timeout_ms(std::int64_t timeout_ms) override {
    timeout_ms_.store(timeout_ms, std::memory_order_relaxed);
  }

  bool closed() const override { return tx_->closed(); }

  ConnectionStats stats() const override {
    ConnectionStats out;
    out.frames_sent = frames_sent_.load(std::memory_order_relaxed);
    out.frames_received = frames_received_.load(std::memory_order_relaxed);
    out.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
    out.bytes_received = bytes_received_.load(std::memory_order_relaxed);
    return out;
  }

 private:
  std::shared_ptr<BoundedQueue<Message>> tx_;
  std::shared_ptr<BoundedQueue<Message>> rx_;
  std::atomic<std::int64_t> timeout_ms_{0};
  std::atomic<std::int64_t> frames_sent_{0};
  std::atomic<std::int64_t> frames_received_{0};
  std::atomic<std::int64_t> bytes_sent_{0};
  std::atomic<std::int64_t> bytes_received_{0};
};

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

using SteadyClock = std::chrono::steady_clock;

/// Milliseconds left until `deadline`, clamped to [0, INT_MAX] for poll().
int remaining_ms(SteadyClock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - SteadyClock::now())
                        .count();
  if (left <= 0) return 0;
  if (left > 2'000'000'000) return 2'000'000'000;
  return static_cast<int>(left);
}

/// Blocks until `fd` is ready for `events` (POLLIN/POLLOUT) or the deadline
/// passes.  Returns false on deadline.  EINTR retries with the remaining
/// budget.  POLLERR/POLLHUP count as ready — the following send/recv
/// surfaces the actual socket error or EOF.
bool wait_ready(int fd, short events, SteadyClock::time_point deadline) {
  for (;;) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int budget = remaining_ms(deadline);
    const int rc = ::poll(&pfd, 1, budget);
    if (rc > 0) return true;
    if (rc == 0) {
      if (budget == 0 && SteadyClock::now() < deadline) continue;
      return false;
    }
    if (errno == EINTR) continue;
    throw_errno("poll");
  }
}

/// Writes exactly `size` bytes.  With timeout_ms > 0, each stalled write
/// waits at most until the per-operation deadline and then throws
/// TimeoutError; `frame_started` marks whether earlier bytes of the same
/// frame already went out (a mid-frame timeout leaves the stream
/// unframeable).
void write_all(int fd, const void* data, std::size_t size,
               std::int64_t timeout_ms = 0, bool frame_started = false) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  const auto deadline =
      SteadyClock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, bytes + sent, size - sent,
                             MSG_NOSIGNAL | (timeout_ms > 0 ? MSG_DONTWAIT : 0));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (timeout_ms > 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!wait_ready(fd, POLLOUT, deadline)) {
          const bool mid_frame = frame_started || sent > 0;
          obs::record_event(obs::EventCode::TransportTimeout,
                            mid_frame ? 1 : 0);
          throw TimeoutError("send timed out", mid_frame);
        }
        continue;
      }
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Reads exactly `size` bytes.  Returns false on clean EOF before the first
/// byte.  With timeout_ms > 0, throws TimeoutError once the per-operation
/// deadline passes; `frame_started` marks whether earlier bytes of the same
/// frame were already consumed (mid-frame timeouts are unrecoverable — the
/// length-prefixed stream cannot re-synchronize).
bool read_all(int fd, void* data, std::size_t size, std::int64_t timeout_ms = 0,
              bool frame_started = false) {
  auto* bytes = static_cast<std::uint8_t*>(data);
  const auto deadline =
      SteadyClock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t received = 0;
  while (received < size) {
    if (timeout_ms > 0 && !wait_ready(fd, POLLIN, deadline)) {
      const bool mid_frame = frame_started || received > 0;
      obs::record_event(obs::EventCode::TransportTimeout, mid_frame ? 1 : 0);
      throw TimeoutError("recv timed out", mid_frame);
    }
    const ssize_t n = ::recv(fd, bytes + received, size - received, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (received == 0) return false;
      throw TransportError("peer closed mid-frame");
    }
    received += static_cast<std::size_t>(n);
  }
  return true;
}

class TcpConnection : public Connection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {
    const int one = 1;
    // pico-lint: allow(unchecked-status): TCP_NODELAY is a latency hint;
    // the connection is fully functional without it
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpConnection() override {
    close();
    // By destruction time every thread using this connection has been
    // joined, so releasing the descriptor cannot race with a blocked recv.
    // pico-lint: allow(unchecked-status): destructors cannot surface errors
    ::close(fd_);
  }

  void send(const Message& message) override {
    // A connection closed mid-shutdown is a transport condition (the normal
    // stop() / Shutdown-message race), not a programming error.
    if (closed_.load(std::memory_order_acquire)) {
      throw TransportError("send on closed connection");
    }
    obs::Span span("send", "net", obs::net_track(), message.task_id);
    const std::int64_t start_ns = obs::Tracer::now_ns();
    const std::int64_t timeout_ms =
        timeout_ms_.load(std::memory_order_relaxed);
    const std::vector<std::uint8_t> payload = serialize(message);
    const std::uint64_t length = payload.size();
    write_all(fd_, &length, sizeof(length), timeout_ms, false);
    write_all(fd_, payload.data(), payload.size(), timeout_ms, true);
    const std::int64_t frame_bytes =
        static_cast<std::int64_t>(sizeof(length) + payload.size());
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(frame_bytes, std::memory_order_relaxed);
    atomic_add_seconds(
        send_seconds_,
        static_cast<double>(obs::Tracer::now_ns() - start_ns) / 1e9);
    span.arg("bytes", std::to_string(frame_bytes));
  }

  Message recv() override {
    if (closed_.load(std::memory_order_acquire)) {
      throw TransportError("recv on closed connection");
    }
    const std::int64_t start_ns = obs::Tracer::now_ns();
    const std::int64_t timeout_ms =
        timeout_ms_.load(std::memory_order_relaxed);
    std::uint64_t length = 0;
    if (!read_all(fd_, &length, sizeof(length), timeout_ms, false)) {
      throw TransportError("tcp peer closed");
    }
    PICO_CHECK_MSG(length <= (1ull << 32), "oversized frame");
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(length));
    if (!read_all(fd_, payload.data(), payload.size(), timeout_ms, true)) {
      throw TransportError("tcp peer closed mid-frame");
    }
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    bytes_received_.fetch_add(
        static_cast<std::int64_t>(sizeof(length) + payload.size()),
        std::memory_order_relaxed);
    atomic_add_seconds(
        recv_seconds_,
        static_cast<double>(obs::Tracer::now_ns() - start_ns) / 1e9);
    return deserialize(payload.data(), payload.size());
  }

  // close() races with a recv() blocked on the socket in another thread by
  // design (Worker::stop unblocks the worker this way), so it must not
  // release the descriptor: a concurrent ::close() both races on the fd and
  // could hand a recycled descriptor to the blocked reader.  shutdown() only
  // wakes the peer (recv returns 0 -> clean-EOF TransportError); the fd is
  // released in the destructor, after joins.  exchange() makes repeated
  // close() calls harmless.
  void close() override {
    if (!closed_.exchange(true, std::memory_order_acq_rel)) {
      obs::record_event(obs::EventCode::TransportClose, fd_);
      // pico-lint: allow(unchecked-status): best-effort peer wakeup; failure
      // means the socket is already disconnected, which is the goal state
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  ConnectionStats stats() const override {
    ConnectionStats out;
    out.frames_sent = frames_sent_.load(std::memory_order_relaxed);
    out.frames_received = frames_received_.load(std::memory_order_relaxed);
    out.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
    out.bytes_received = bytes_received_.load(std::memory_order_relaxed);
    out.send_seconds = send_seconds_.load(std::memory_order_relaxed);
    out.recv_seconds = recv_seconds_.load(std::memory_order_relaxed);
    return out;
  }

  void set_timeout_ms(std::int64_t timeout_ms) override {
    timeout_ms_.store(timeout_ms, std::memory_order_relaxed);
  }

  bool closed() const override {
    return closed_.load(std::memory_order_acquire);
  }

 private:
  const int fd_;
  std::atomic<bool> closed_{false};
  std::atomic<std::int64_t> timeout_ms_{0};
  std::atomic<std::int64_t> frames_sent_{0};
  std::atomic<std::int64_t> frames_received_{0};
  std::atomic<std::int64_t> bytes_sent_{0};
  std::atomic<std::int64_t> bytes_received_{0};
  std::atomic<double> send_seconds_{0.0};
  std::atomic<double> recv_seconds_{0.0};
};

}  // namespace

std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
make_inproc_pair() {
  auto a_to_b = std::make_shared<BoundedQueue<Message>>();
  auto b_to_a = std::make_shared<BoundedQueue<Message>>();
  return {std::make_unique<InProcConnection>(a_to_b, b_to_a),
          std::make_unique<InProcConnection>(b_to_a, a_to_b)};
}

TcpListener::TcpListener(std::uint16_t port, const std::string& bind_host) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  // pico-lint: allow(unchecked-status): REUSEADDR is an optimization for
  // fast listener restart; bind() reports the failure that matters
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, bind_host.c_str(), &addr.sin_addr) != 1) {
    // pico-lint: allow(unchecked-status): cleanup on the constructor error
    // path; the bad-address failure is what gets reported
    ::close(fd_);
    fd_ = -1;
    throw TransportError("bind host is not a valid IPv4 address: " +
                         bind_host);
  }
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw_errno("bind");
  }
  if (::listen(fd_, 64) < 0) throw_errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<Connection> TcpListener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return std::make_unique<TcpConnection>(fd);
    // accept() is the one blocking call a signal lands on most often
    // (profilers, timers, forked children exiting) — retry like
    // write_all/read_all do instead of tearing the listener down.
    if (errno == EINTR) continue;
    throw_errno("accept");
  }
}

namespace {

/// connect() interrupted by a signal keeps connecting in the background
/// (POSIX leaves the socket in progress) — finish the handshake with
/// poll(POLLOUT) and read the final status from SO_ERROR.
void finish_interrupted_connect(int fd) {
  for (;;) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int rc = ::poll(&pfd, 1, -1);
    if (rc > 0) break;
    if (rc < 0 && errno == EINTR) continue;
    throw_errno("poll(connect)");
  }
  int status = 0;
  socklen_t len = sizeof(status);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &status, &len) < 0) {
    throw_errno("getsockopt(SO_ERROR)");
  }
  if (status != 0) {
    errno = status;
    throw_errno("connect");
  }
}

}  // namespace

std::unique_ptr<Connection> tcp_connect(std::uint16_t port) {
  return tcp_connect("127.0.0.1", port);
}

std::unique_ptr<Connection> tcp_connect(const std::string& host,
                                        std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const int gai = ::getaddrinfo(host.c_str(), nullptr, &hints, &resolved);
  if (gai != 0) {
    throw TransportError("getaddrinfo(" + host +
                         "): " + ::gai_strerror(gai));
  }
  sockaddr_in addr{};
  std::memcpy(&addr, resolved->ai_addr, sizeof(addr));
  ::freeaddrinfo(resolved);
  addr.sin_port = htons(port);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  try {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      if (errno == EINTR) {
        finish_interrupted_connect(fd);
      } else {
        throw_errno("connect");
      }
    }
  } catch (...) {
    // pico-lint: allow(unchecked-status): cleanup on the connect error path;
    // the connect failure is what gets reported
    ::close(fd);
    throw;
  }
  obs::record_event(obs::EventCode::TransportConnect, port);
  return std::make_unique<TcpConnection>(fd);
}

}  // namespace pico::runtime
