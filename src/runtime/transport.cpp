#include "runtime/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace pico::runtime {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw TransportError(std::string(what) + ": " + std::strerror(errno));
}

void atomic_add_seconds(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

/// Serialized size of a message without actually serializing it (used by the
/// in-process transport, which moves Messages by value).
std::int64_t wire_size(const Message& message) {
  // Mirrors serialize() (PIC2): fixed header (magic, type, ids, compute
  // seconds, trace context, five timestamps), regions, blob length + blob,
  // shape, tensor payload.
  constexpr std::int64_t kHeader =
      4 + 4 + 8 + 4 + 4 + 4 + 8 + (8 + 8) + 5 * 8 + 32 + 8 + 12;
  return kHeader + static_cast<std::int64_t>(message.blob.size()) +
         static_cast<std::int64_t>(message.tensor.shape().elements()) * 4;
}

// ---------------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------------

class InProcConnection : public Connection {
 public:
  InProcConnection(std::shared_ptr<BoundedQueue<Message>> tx,
                   std::shared_ptr<BoundedQueue<Message>> rx)
      : tx_(std::move(tx)), rx_(std::move(rx)) {}

  ~InProcConnection() override { close(); }

  void send(const Message& message) override {
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(wire_size(message), std::memory_order_relaxed);
    tx_->push(message);
  }

  Message recv() override {
    std::optional<Message> message = rx_->pop();
    if (!message) throw TransportError("in-process peer closed");
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    bytes_received_.fetch_add(wire_size(*message),
                              std::memory_order_relaxed);
    return std::move(*message);
  }

  void close() override {
    tx_->close();
    rx_->close();
  }

  ConnectionStats stats() const override {
    ConnectionStats out;
    out.frames_sent = frames_sent_.load(std::memory_order_relaxed);
    out.frames_received = frames_received_.load(std::memory_order_relaxed);
    out.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
    out.bytes_received = bytes_received_.load(std::memory_order_relaxed);
    return out;
  }

 private:
  std::shared_ptr<BoundedQueue<Message>> tx_;
  std::shared_ptr<BoundedQueue<Message>> rx_;
  std::atomic<std::int64_t> frames_sent_{0};
  std::atomic<std::int64_t> frames_received_{0};
  std::atomic<std::int64_t> bytes_sent_{0};
  std::atomic<std::int64_t> bytes_received_{0};
};

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

void write_all(int fd, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, bytes + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Returns false on clean EOF at a frame boundary.
bool read_all(int fd, void* data, std::size_t size) {
  auto* bytes = static_cast<std::uint8_t*>(data);
  std::size_t received = 0;
  while (received < size) {
    const ssize_t n = ::recv(fd, bytes + received, size - received, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (received == 0) return false;
      throw TransportError("peer closed mid-frame");
    }
    received += static_cast<std::size_t>(n);
  }
  return true;
}

class TcpConnection : public Connection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {
    const int one = 1;
    // pico-lint: allow(unchecked-status): TCP_NODELAY is a latency hint;
    // the connection is fully functional without it
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpConnection() override {
    close();
    // By destruction time every thread using this connection has been
    // joined, so releasing the descriptor cannot race with a blocked recv.
    // pico-lint: allow(unchecked-status): destructors cannot surface errors
    ::close(fd_);
  }

  void send(const Message& message) override {
    // A connection closed mid-shutdown is a transport condition (the normal
    // stop() / Shutdown-message race), not a programming error.
    if (closed_.load(std::memory_order_acquire)) {
      throw TransportError("send on closed connection");
    }
    obs::Span span("send", "net", obs::net_track(), message.task_id);
    const std::int64_t start_ns = obs::Tracer::now_ns();
    const std::vector<std::uint8_t> payload = serialize(message);
    const std::uint64_t length = payload.size();
    write_all(fd_, &length, sizeof(length));
    write_all(fd_, payload.data(), payload.size());
    const std::int64_t frame_bytes =
        static_cast<std::int64_t>(sizeof(length) + payload.size());
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(frame_bytes, std::memory_order_relaxed);
    atomic_add_seconds(
        send_seconds_,
        static_cast<double>(obs::Tracer::now_ns() - start_ns) / 1e9);
    span.arg("bytes", std::to_string(frame_bytes));
  }

  Message recv() override {
    if (closed_.load(std::memory_order_acquire)) {
      throw TransportError("recv on closed connection");
    }
    const std::int64_t start_ns = obs::Tracer::now_ns();
    std::uint64_t length = 0;
    if (!read_all(fd_, &length, sizeof(length))) {
      throw TransportError("tcp peer closed");
    }
    PICO_CHECK_MSG(length <= (1ull << 32), "oversized frame");
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(length));
    if (!read_all(fd_, payload.data(), payload.size())) {
      throw TransportError("tcp peer closed mid-frame");
    }
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    bytes_received_.fetch_add(
        static_cast<std::int64_t>(sizeof(length) + payload.size()),
        std::memory_order_relaxed);
    atomic_add_seconds(
        recv_seconds_,
        static_cast<double>(obs::Tracer::now_ns() - start_ns) / 1e9);
    return deserialize(payload.data(), payload.size());
  }

  // close() races with a recv() blocked on the socket in another thread by
  // design (Worker::stop unblocks the worker this way), so it must not
  // release the descriptor: a concurrent ::close() both races on the fd and
  // could hand a recycled descriptor to the blocked reader.  shutdown() only
  // wakes the peer (recv returns 0 -> clean-EOF TransportError); the fd is
  // released in the destructor, after joins.  exchange() makes repeated
  // close() calls harmless.
  void close() override {
    if (!closed_.exchange(true, std::memory_order_acq_rel)) {
      // pico-lint: allow(unchecked-status): best-effort peer wakeup; failure
      // means the socket is already disconnected, which is the goal state
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  ConnectionStats stats() const override {
    ConnectionStats out;
    out.frames_sent = frames_sent_.load(std::memory_order_relaxed);
    out.frames_received = frames_received_.load(std::memory_order_relaxed);
    out.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
    out.bytes_received = bytes_received_.load(std::memory_order_relaxed);
    out.send_seconds = send_seconds_.load(std::memory_order_relaxed);
    out.recv_seconds = recv_seconds_.load(std::memory_order_relaxed);
    return out;
  }

 private:
  const int fd_;
  std::atomic<bool> closed_{false};
  std::atomic<std::int64_t> frames_sent_{0};
  std::atomic<std::int64_t> frames_received_{0};
  std::atomic<std::int64_t> bytes_sent_{0};
  std::atomic<std::int64_t> bytes_received_{0};
  std::atomic<double> send_seconds_{0.0};
  std::atomic<double> recv_seconds_{0.0};
};

}  // namespace

std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
make_inproc_pair() {
  auto a_to_b = std::make_shared<BoundedQueue<Message>>();
  auto b_to_a = std::make_shared<BoundedQueue<Message>>();
  return {std::make_unique<InProcConnection>(a_to_b, b_to_a),
          std::make_unique<InProcConnection>(b_to_a, a_to_b)};
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  // pico-lint: allow(unchecked-status): REUSEADDR is an optimization for
  // fast listener restart; bind() reports the failure that matters
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw_errno("bind");
  }
  if (::listen(fd_, 64) < 0) throw_errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<Connection> TcpListener::accept() {
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) throw_errno("accept");
  return std::make_unique<TcpConnection>(fd);
}

std::unique_ptr<Connection> tcp_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    // pico-lint: allow(unchecked-status): cleanup on the connect error path;
    // the connect failure is what gets reported
    ::close(fd);
    errno = saved;
    throw_errno("connect");
  }
  return std::make_unique<TcpConnection>(fd);
}

}  // namespace pico::runtime
