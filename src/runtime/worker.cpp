#include "runtime/worker.hpp"

#include <signal.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/mutex.hpp"
#include "nn/executor.hpp"
#include "obs/clock.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/remote.hpp"
#include "obs/trace.hpp"

namespace pico::runtime {

namespace {

/// Debug compute-delay injections, keyed by device (see worker.hpp).
struct DebugDelays {
  Mutex mutex;
  std::map<DeviceId, double> delay_ms PICO_GUARDED_BY(mutex);
};

DebugDelays& debug_delays() {
  static DebugDelays* instance = new DebugDelays();
  return *instance;
}

/// Debug fault injections (crash / hang), keyed by device (see worker.hpp).
struct DebugFaults {
  Mutex mutex;
  std::map<DeviceId, long long> kill_after PICO_GUARDED_BY(mutex);
  std::map<DeviceId, bool> stall PICO_GUARDED_BY(mutex);
  std::map<DeviceId, long long> segv_after PICO_GUARDED_BY(mutex);
};

DebugFaults& debug_faults() {
  static DebugFaults* instance = new DebugFaults();
  return *instance;
}

/// Counts down the kill-after budget for one received WorkRequest; true
/// means the worker should die now instead of serving it.
bool debug_worker_consume_kill(DeviceId device) {
  DebugFaults& faults = debug_faults();
  MutexLock lock(faults.mutex);
  const auto it = faults.kill_after.find(device);
  if (it == faults.kill_after.end()) return false;
  if (--it->second > 0) return false;
  faults.kill_after.erase(it);
  return true;
}

bool debug_worker_stalled(DeviceId device) {
  DebugFaults& faults = debug_faults();
  MutexLock lock(faults.mutex);
  const auto it = faults.stall.find(device);
  return it != faults.stall.end() && it->second;
}

/// Counts down the segv-after budget; true means raise SIGSEGV now.
bool debug_worker_consume_segv(DeviceId device) {
  DebugFaults& faults = debug_faults();
  MutexLock lock(faults.mutex);
  const auto it = faults.segv_after.find(device);
  if (it == faults.segv_after.end()) return false;
  if (--it->second > 0) return false;
  faults.segv_after.erase(it);
  return true;
}

}  // namespace

void set_debug_compute_delay_ms(DeviceId device, double delay_ms) {
  DebugDelays& delays = debug_delays();
  MutexLock lock(delays.mutex);
  if (delay_ms <= 0.0) {
    delays.delay_ms.erase(device);
  } else {
    delays.delay_ms[device] = delay_ms;
  }
}

double debug_compute_delay_ms(DeviceId device) {
  DebugDelays& delays = debug_delays();
  MutexLock lock(delays.mutex);
  const auto it = delays.delay_ms.find(device);
  return it != delays.delay_ms.end() ? it->second : 0.0;
}

void clear_debug_compute_delays() {
  DebugDelays& delays = debug_delays();
  MutexLock lock(delays.mutex);
  delays.delay_ms.clear();
}

void set_debug_worker_kill_after(DeviceId device, long long requests) {
  DebugFaults& faults = debug_faults();
  MutexLock lock(faults.mutex);
  if (requests <= 0) {
    faults.kill_after.erase(device);
  } else {
    faults.kill_after[device] = requests;
  }
}

void set_debug_worker_stall(DeviceId device, bool stalled) {
  DebugFaults& faults = debug_faults();
  MutexLock lock(faults.mutex);
  if (stalled) {
    faults.stall[device] = true;
  } else {
    faults.stall.erase(device);
  }
}

void set_debug_worker_segv_after(DeviceId device, long long requests) {
  DebugFaults& faults = debug_faults();
  MutexLock lock(faults.mutex);
  if (requests <= 0) {
    faults.segv_after.erase(device);
  } else {
    faults.segv_after[device] = requests;
  }
}

void clear_debug_worker_faults() {
  DebugFaults& faults = debug_faults();
  MutexLock lock(faults.mutex);
  faults.kill_after.clear();
  faults.stall.clear();
  faults.segv_after.clear();
}

namespace {

/// Serve one WorkRequest: run the segment, time it, and fill the result.
/// The measured compute time rides back in the WorkResult both as a
/// duration (compute_seconds — meaningful with no clock sync at all) and as
/// worker-clock start/end instants the coordinator can rebase onto its own
/// timeline once the per-device clock offset is estimated.  When the
/// request carries a trace context (trace_id != 0) the worker also records
/// real spans — the propagated-context replacement for the spans the
/// coordinator used to synthesize — into `spans`, to be harvested via
/// TraceDump or flushed on shutdown.
Message serve_request(const nn::Graph& graph, Message request,
                      DeviceId device, const nn::ExecOptions& options,
                      std::int64_t recv_ns, obs::SpanBuffer& spans) {
  Message result;
  result.type = MessageType::WorkResult;
  result.task_id = request.task_id;
  result.stage_index = request.stage_index;
  result.out_region = request.out_region;
  result.trace_id = request.trace_id;
  result.parent_span = request.parent_span;
  result.t_origin_ns = request.t_origin_ns;
  result.t_recv_ns = recv_ns;
  const std::int64_t start_ns = obs::worker_now_ns();
  result.tensor =
      nn::execute_segment(graph, request.first_node, request.last_node,
                          {request.in_region, std::move(request.tensor)},
                          request.out_region, options);
  // Chaos injection: slow this device inside the timed window so the delay
  // is indistinguishable from genuinely slower compute downstream.
  const double delay_ms = debug_compute_delay_ms(device);
  if (delay_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        delay_ms));
  }
  const std::int64_t end_ns = obs::worker_now_ns();
  result.t_compute_start_ns = start_ns;
  result.t_compute_end_ns = end_ns;
  result.compute_seconds = static_cast<double>(end_ns - start_ns) / 1e9;

  if (request.trace_id != 0) {
    const std::string stage = std::to_string(request.stage_index);
    const std::string trace = std::to_string(request.trace_id);
    const std::string parent = std::to_string(request.parent_span);
    // Category "compute" matches the span the coordinator used to
    // synthesize, so existing consumers (reports, tests) see the same event
    // — now with a real worker-measured interval instead of a guess.
    obs::SpanRecord compute;
    compute.name = "compute";
    compute.category = "compute";
    compute.track = obs::device_track(device);
    compute.task_id = request.task_id;
    compute.start_ns = start_ns;
    compute.duration_ns = end_ns - start_ns;
    compute.args = {{"stage", stage},
                    {"device", std::to_string(device)},
                    {"trace", trace},
                    {"parent", parent}};
    // The serve span wraps deserialize-to-reply-build (its end is taken
    // here, just before the reply hits the wire), so compute nests inside.
    obs::SpanRecord serve;
    serve.name = "serve";
    serve.category = "worker";
    serve.track = obs::device_track(device);
    serve.task_id = request.task_id;
    serve.start_ns = recv_ns;
    serve.duration_ns = obs::worker_now_ns() - recv_ns;
    serve.args = {{"stage", stage}, {"trace", trace}, {"parent", parent}};
    // Carry the serving thread's name so harvested spans and TSan reports
    // agree on who did the work.
    const char* thread_name = obs::FlightRecorder::global().current_thread_name();
    if (thread_name[0] != '\0') {
      serve.args.push_back({"thread", thread_name});
    }
    spans.record(std::move(compute));
    spans.record(std::move(serve));
  }
  return result;
}

/// The one serve loop both Worker::run and serve_blocking use.  Requests
/// are counted (registry + optional owner-visible atomic) at serve time,
/// after the segment is computed but before the reply is sent: work the
/// device performed stays visible even when the reply leg fails.
///
/// Control plane: Ping answers with the NTP t2/t3 pair, MetricsDump with
/// the registry's Prometheus text, TraceDump with (and draining) the local
/// span buffer.  On a graceful Shutdown the remaining spans are flushed
/// into the process-global tracer so a run that never harvested still keeps
/// its worker telemetry.
void serve_loop(const nn::Graph& graph, Connection& connection,
                DeviceId device, const nn::ExecOptions& options,
                std::atomic<long long>* served) {
  obs::Counter& requests = obs::Registry::global().counter(
      "pico_worker_requests_total", {{"device", std::to_string(device)}});
  obs::SpanBuffer spans;
  try {
    for (;;) {
      Message request = connection.recv();
      const std::int64_t recv_ns = obs::worker_now_ns();
      if (request.type == MessageType::Shutdown) {
        // The Shutdown carries the coordinator's final span cursor: prune
        // everything a harvest round already delivered so the tracer flush
        // below cannot duplicate it.
        obs::record_event(obs::EventCode::WorkerShutdown, device);
        spans.ack(request.span_cursor);
        spans.flush_to_tracer();
        break;
      }
      if (request.type == MessageType::Ping) {
        Message pong;
        pong.type = MessageType::Pong;
        pong.task_id = request.task_id;
        pong.t_origin_ns = request.t_origin_ns;
        pong.t_recv_ns = recv_ns;
        pong.t_send_ns = obs::worker_now_ns();
        connection.send(pong);
        continue;
      }
      if (request.type == MessageType::MetricsDump) {
        Message reply;
        reply.type = MessageType::MetricsDump;
        reply.t_recv_ns = recv_ns;
        const std::string text = obs::Registry::global().prometheus_text();
        reply.blob.assign(text.begin(), text.end());
        reply.t_send_ns = obs::worker_now_ns();
        connection.send(reply);
        continue;
      }
      if (request.type == MessageType::TraceDump) {
        Message reply;
        reply.type = MessageType::TraceDump;
        reply.t_recv_ns = recv_ns;
        // Cursor exchange (see obs/remote.hpp): the request cursor acks —
        // and prunes — everything below it; the reply ships the rest and
        // names the cursor for the next round.  A v2 coordinator sends
        // cursor 0 every time and so keeps full-drain semantics minus the
        // pruning (its spans are simply re-sent until shutdown acks them).
        obs::TraceChunk chunk = spans.chunk(request.span_cursor);
        reply.span_cursor = chunk.next;
        reply.span_cursor_base = chunk.base;
        reply.blob = obs::encode_spans(chunk.spans);
        reply.t_send_ns = obs::worker_now_ns();
        connection.send(reply);
        continue;
      }
      if (request.type == MessageType::EventDump) {
        // Black-box harvest (v4): ship every flight-recorder event with
        // seq > cursor.  Unlike TraceDump nothing is pruned — the ring
        // overwrites itself — so the reply's base > cursor + 1 tells the
        // harvester history was lost to wraparound (tolerated by design).
        Message reply;
        reply.type = MessageType::EventDump;
        reply.t_recv_ns = recv_ns;
        const obs::EventChunk chunk =
            obs::FlightRecorder::global().chunk(request.span_cursor);
        reply.span_cursor = chunk.next;
        reply.span_cursor_base = chunk.base;
        reply.blob = obs::encode_events(chunk);
        reply.t_send_ns = obs::worker_now_ns();
        connection.send(reply);
        continue;
      }
      PICO_CHECK_MSG(request.type == MessageType::WorkRequest,
                     "worker got unexpected message type");
      // Journal the accept before any chaos can kill us: a postmortem must
      // name the in-flight task.
      obs::record_event(obs::EventCode::WorkerServe, request.task_id,
                        request.first_node, device);
      // Chaos injection: crash simulation.  Dying on receipt — request
      // accepted, never answered — is the worst case for the coordinator:
      // it is left blocked in the gather recv until the close() below
      // surfaces as an EOF on its end of the connection.
      if (debug_worker_consume_kill(device)) {
        PICO_LOG(Warn) << "worker (device " << device
                       << ") debug kill: dropping connection mid-task "
                       << request.task_id;
        connection.close();
        spans.flush_to_tracer();
        return;
      }
      // Chaos injection: real crash.  raise(SIGSEGV) (not a wild store —
      // no UB) exercises the full postmortem path: handler, black-box
      // dump, default-disposition death the parent observes via waitpid.
      if (debug_worker_consume_segv(device)) {
        PICO_LOG(Warn) << "worker (device " << device
                       << ") debug segv: crashing mid-task "
                       << request.task_id;
        // pico-lint: allow(unchecked-status): the process is gone either way
        ::raise(SIGSEGV);
      }
      Message result = serve_request(graph, std::move(request), device,
                                     options, recv_ns, spans);
      requests.add();
      if (served != nullptr) {
        served->fetch_add(1, std::memory_order_relaxed);
      }
      // Chaos injection: hang simulation.  Wedge the reply leg — the
      // coordinator sees silence, not EOF, so only a recv deadline can
      // unblock it.  Sliced sleep keeps the worker responsive to its own
      // stop() (close() flips closed()) and a hard cap keeps a forgotten
      // flag from leaking a stuck thread past the test.
      if (debug_worker_stalled(device)) {
        const auto stall_start = std::chrono::steady_clock::now();
        while (debug_worker_stalled(device) && !connection.closed() &&
               std::chrono::steady_clock::now() - stall_start <
                   std::chrono::seconds(60)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
      const std::int64_t reply_task = result.task_id;
      result.t_send_ns = obs::worker_now_ns();
      connection.send(std::move(result));
      obs::record_event(obs::EventCode::WorkerReply, reply_task, device);
    }
  } catch (const TransportError&) {
    // Peer closed (or spoke another protocol version): normal shutdown
    // path.  Keep whatever telemetry was recorded.
    spans.flush_to_tracer();
  } catch (const Error& error) {
    PICO_LOG(Error) << "worker (device " << device
                    << ") failed: " << error.what();
    spans.flush_to_tracer();
  }
}

}  // namespace

void serve_blocking(const nn::Graph& graph, Connection& connection,
                    DeviceId device, const nn::ExecOptions& options) {
  const std::string name =
      device >= 0 ? "pico-srv-d" + std::to_string(device) : "pico-srv";
  obs::set_current_thread_name(name.c_str());
  serve_loop(graph, connection, device, options, nullptr);
}

Worker::Worker(const nn::Graph& graph,
               std::unique_ptr<Connection> connection, DeviceId device,
               const nn::ExecOptions& options)
    : graph_(graph),
      connection_(std::move(connection)),
      device_(device),
      options_(options) {
  PICO_CHECK(connection_ != nullptr);
}

Worker::~Worker() { stop(); }

void Worker::start() {
  PICO_CHECK_MSG(!thread_.joinable(), "worker already started");
  thread_ = SchedThread([this] { run(); });
}

void Worker::stop() {
  if (connection_) connection_->close();
  if (thread_.joinable()) thread_.join();
}

void Worker::run() {
  const std::string name = "pico-wrk-d" + std::to_string(device_);
  obs::set_current_thread_name(name.c_str());
  serve_loop(graph_, *connection_, device_, options_, &requests_);
}

}  // namespace pico::runtime
