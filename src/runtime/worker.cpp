#include "runtime/worker.hpp"

#include <string>

#include "common/error.hpp"
#include "common/log.hpp"
#include "nn/executor.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pico::runtime {

namespace {

/// Serve one WorkRequest: run the segment, time it, and fill the result.
/// The measured compute time rides back in the WorkResult so the
/// coordinator can attribute per-device compute without trusting clocks to
/// be synchronized across hosts (only durations cross the wire).
Message serve_request(const nn::Graph& graph, Message request,
                      const nn::ExecOptions& options) {
  Message result;
  result.type = MessageType::WorkResult;
  result.task_id = request.task_id;
  result.stage_index = request.stage_index;
  result.out_region = request.out_region;
  const std::int64_t start_ns = obs::Tracer::now_ns();
  result.tensor =
      nn::execute_segment(graph, request.first_node, request.last_node,
                          {request.in_region, std::move(request.tensor)},
                          request.out_region, options);
  result.compute_seconds =
      static_cast<double>(obs::Tracer::now_ns() - start_ns) / 1e9;
  return result;
}

/// The one serve loop both Worker::run and serve_blocking use.  Requests
/// are counted (registry + optional owner-visible atomic) at serve time,
/// after the segment is computed but before the reply is sent: work the
/// device performed stays visible even when the reply leg fails.
void serve_loop(const nn::Graph& graph, Connection& connection,
                DeviceId device, const nn::ExecOptions& options,
                std::atomic<long long>* served) {
  obs::Counter& requests = obs::Registry::global().counter(
      "pico_worker_requests_total", {{"device", std::to_string(device)}});
  try {
    for (;;) {
      Message request = connection.recv();
      if (request.type == MessageType::Shutdown) break;
      PICO_CHECK_MSG(request.type == MessageType::WorkRequest,
                     "worker got unexpected message type");
      Message result = serve_request(graph, std::move(request), options);
      requests.add();
      if (served != nullptr) {
        served->fetch_add(1, std::memory_order_relaxed);
      }
      connection.send(std::move(result));
    }
  } catch (const TransportError&) {
    // Peer closed: normal shutdown path.
  } catch (const Error& error) {
    PICO_LOG(Error) << "worker (device " << device
                    << ") failed: " << error.what();
  }
}

}  // namespace

void serve_blocking(const nn::Graph& graph, Connection& connection,
                    DeviceId device, const nn::ExecOptions& options) {
  serve_loop(graph, connection, device, options, nullptr);
}

Worker::Worker(const nn::Graph& graph,
               std::unique_ptr<Connection> connection, DeviceId device,
               const nn::ExecOptions& options)
    : graph_(graph),
      connection_(std::move(connection)),
      device_(device),
      options_(options) {
  PICO_CHECK(connection_ != nullptr);
}

Worker::~Worker() { stop(); }

void Worker::start() {
  PICO_CHECK_MSG(!thread_.joinable(), "worker already started");
  thread_ = std::thread([this] { run(); });
}

void Worker::stop() {
  if (connection_) connection_->close();
  if (thread_.joinable()) thread_.join();
}

void Worker::run() {
  serve_loop(graph_, *connection_, device_, options_, &requests_);
}

}  // namespace pico::runtime
