#include "runtime/adaptive_runtime.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pico::runtime {

namespace {

adaptive::ApicoOptions controller_options(
    const AdaptiveRuntimeOptions& options) {
  adaptive::ApicoOptions out;
  out.beta = options.beta;
  out.window = options.window;
  return out;
}

}  // namespace

AdaptiveRuntime::AdaptiveRuntime(const nn::Graph& graph,
                                 std::vector<adaptive::Candidate> candidates,
                                 AdaptiveRuntimeOptions options)
    : graph_(graph),
      options_(options),
      controller_(std::move(candidates), controller_options(options)) {
  PICO_CHECK(options_.window > 0.0);
  activate(0);
  window_start_ = std::chrono::steady_clock::now();
}

AdaptiveRuntime::~AdaptiveRuntime() { shutdown(); }

void AdaptiveRuntime::activate(std::size_t candidate_index) {
  PICO_CHECK(candidate_index < controller_.candidates().size());
  const std::string& next_scheme =
      controller_.candidates()[candidate_index].plan.scheme;
  if (active_) {
    // Drain: the PipelineRuntime destructor-less shutdown waits for every
    // in-flight task before the workers stop, matching the simulator's
    // drain-then-swap.
    const std::string from_scheme = current_scheme();
    const std::int64_t drain_start = obs::Tracer::now_ns();
    active_->shutdown();
    const std::int64_t drain_end = obs::Tracer::now_ns();
    for (obs::WorkerTelemetry& worker :
         active_->cluster_telemetry().workers()) {
      telemetry_.add(std::move(worker));
    }
    // Keep the epoch's health events: the next runtime's harvester starts
    // from scratch (new plan, new baselines), but straggler / drift history
    // should survive the switch in health().
    const obs::HealthSnapshot epoch_health = active_->health();
    past_events_.insert(past_events_.end(), epoch_health.events.begin(),
                        epoch_health.events.end());
    ++switches_;
    obs::record_event(obs::EventCode::PlanSwitch,
                      obs::FlightRecorder::global().intern(from_scheme.c_str()),
                      obs::FlightRecorder::global().intern(next_scheme.c_str()),
                      static_cast<std::int64_t>(switches_));
    obs::Registry& registry = obs::Registry::global();
    registry.counter("pico_adaptive_switches_total").add(1);
    registry.histogram("pico_adaptive_drain_seconds")
        .observe(static_cast<double>(drain_end - drain_start) / 1e9);
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      obs::SpanRecord span;
      span.name = "switch";
      span.category = "adaptive";
      span.track = obs::adaptive_track();
      span.start_ns = drain_start;
      span.duration_ns = drain_end - drain_start;
      span.args = {{"from", from_scheme}, {"to", next_scheme}};
      tracer.record(std::move(span));
    }
  }
  active_index_ = candidate_index;
  active_ = std::make_unique<PipelineRuntime>(
      graph_, controller_.candidates()[candidate_index].plan,
      options_.runtime);
  history_.push_back(next_scheme);
  PICO_LOG(Info) << "adaptive runtime now on " << history_.back();
}

void AdaptiveRuntime::maybe_reevaluate() {
  const auto now = std::chrono::steady_clock::now();
  const Seconds elapsed =
      std::chrono::duration<double>(now - window_start_).count();
  if (elapsed < options_.window) return;

  // One or more whole windows elapsed.  The producer may have been blocked
  // pushing into a full pipeline for several windows — that is sustained
  // load, not idleness — so spread the observed arrivals uniformly over the
  // elapsed windows and feed each as one Eq. 15 observation.
  const int whole_windows =
      static_cast<int>(elapsed / options_.window);
  const double measured_rate =
      static_cast<double>(window_arrivals_) /
      (whole_windows * options_.window);
  for (int w = 0; w < whole_windows; ++w) {
    controller_.decide_rate(measured_rate);
  }
  window_arrivals_ = 0;
  window_start_ = now;
  obs::Registry::global()
      .gauge("pico_adaptive_lambda_hat")
      .set(controller_.estimated_rate());

  const std::size_t best = adaptive::select_scheme(
      controller_.candidates(), controller_.estimated_rate());
  if (best != active_index_) activate(best);
}

std::future<Tensor> AdaptiveRuntime::submit(Tensor input) {
  PICO_CHECK_MSG(!stopped_, "submit after shutdown");
  ++window_arrivals_;
  maybe_reevaluate();
  return active_->submit(std::move(input));
}

Tensor AdaptiveRuntime::infer(const Tensor& input) {
  return submit(input).get();
}

const std::string& AdaptiveRuntime::current_scheme() const {
  return controller_.candidates()[active_index_].plan.scheme;
}

bool AdaptiveRuntime::harvest_now() {
  if (stopped_ || !active_) return false;
  return active_->harvest_now();
}

obs::HealthSnapshot AdaptiveRuntime::health() const {
  obs::HealthSnapshot out;
  if (active_) out = active_->health();
  if (!past_events_.empty()) {
    out.events.insert(out.events.begin(), past_events_.begin(),
                      past_events_.end());
  }
  return out;
}

void AdaptiveRuntime::shutdown() {
  if (stopped_) return;
  stopped_ = true;
  if (active_) {
    active_->shutdown();
    for (obs::WorkerTelemetry& worker :
         active_->cluster_telemetry().workers()) {
      telemetry_.add(std::move(worker));
    }
  }
}

}  // namespace pico::runtime
