// Device worker: one thread owning one end of a Connection, emulating one
// edge device.  Serves WorkRequests by running the requested fused segment
// over its input piece (real tensor arithmetic via execute_segment) and
// returning the produced output piece.  Exits on Shutdown or peer close.
#pragma once

#include <atomic>
#include <memory>
#include <thread>

#include "common/types.hpp"
#include "nn/graph.hpp"
#include "runtime/transport.hpp"

namespace pico::runtime {

/// Blocking worker loop for standalone device processes: serve WorkRequests
/// on `connection` until Shutdown or peer close.  This is what a real edge
/// device's main() calls after connecting to the coordinator.
void serve_blocking(const nn::Graph& graph, Connection& connection);

class Worker {
 public:
  /// The worker holds a reference to the (immutable, finalized) graph — in a
  /// real deployment each device owns a copy of its model segment; sharing
  /// the weights here changes nothing observable.  `device` is an optional
  /// label the owner uses to attribute this worker's counters (-1 = none).
  Worker(const nn::Graph& graph, std::unique_ptr<Connection> connection,
         DeviceId device = -1);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  void start();
  /// Close the connection and join the thread (idempotent).
  void stop();

  long long requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  DeviceId device() const { return device_; }

 private:
  void run();

  const nn::Graph& graph_;
  std::unique_ptr<Connection> connection_;
  DeviceId device_ = -1;
  std::thread thread_;
  std::atomic<long long> requests_{0};
};

}  // namespace pico::runtime
