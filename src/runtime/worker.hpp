// Device worker: one thread owning one end of a Connection, emulating one
// edge device.  Serves WorkRequests by running the requested fused segment
// over its input piece (real tensor arithmetic via execute_segment) and
// returning the produced output piece.  Exits on Shutdown or peer close.
//
// Besides the data plane, the serve loop answers the PIC2 control plane:
// Ping (clock-offset probe: replies with the worker-clock t2/t3 pair),
// MetricsDump (ships the worker's metrics registry as Prometheus text) and
// TraceDump (drains the worker-side span buffer).  WorkRequests carrying a
// trace context make the worker record real compute/serve spans under that
// context — harvested over the transport by obs::harvest_worker, or flushed
// into the process-global tracer on graceful shutdown so short-lived runs
// don't lose worker telemetry.
//
// Both entry points (the in-process Worker thread and the standalone
// serve_blocking loop a real device's main() calls) share one serve loop
// with identical error handling: TransportError means the peer closed or
// spoke an unsupported protocol version (both end the loop cleanly) and any
// other pico::Error — e.g. a malformed request — is logged and ends the
// loop cleanly instead of unwinding into the caller or taking down a
// standalone worker process.
#pragma once

#include <atomic>
#include <memory>
#include <thread>

#include "common/types.hpp"
#include "nn/graph.hpp"
#include "nn/kernels.hpp"
#include "runtime/transport.hpp"
#include "sched/hooks.hpp"

namespace pico::runtime {

/// Blocking worker loop for standalone device processes: serve WorkRequests
/// on `connection` until Shutdown, peer close, or a malformed request (which
/// is logged, never thrown).  This is what a real edge device's main() calls
/// after connecting to the coordinator.  `device` labels this worker's
/// pico_worker_requests_total metric series; `options` bounds the
/// intra-device threads execute_segment may use.
void serve_blocking(const nn::Graph& graph, Connection& connection,
                    DeviceId device = -1,
                    const nn::ExecOptions& options = {});

/// Test/chaos hook (like obs::set_debug_clock_skew_ns): every WorkRequest
/// served for `device` is artificially slowed by `delay_ms` inside the
/// timed compute window, so the delay shows up in compute_seconds, in the
/// worker's compute spans and — through the windowed views — in the
/// straggler detector.  0 clears the injection.  Process-global: in-process
/// loopback clusters share one worker binary.
void set_debug_compute_delay_ms(DeviceId device, double delay_ms);
double debug_compute_delay_ms(DeviceId device);
void clear_debug_compute_delays();

/// Chaos hook — crash simulation: the worker for `device` drops its
/// connection (close, no reply, loop exit) on receipt of its `requests`-th
/// subsequent WorkRequest, exactly like a process that died mid-task.
/// requests <= 0 clears the injection.  Process-global, like the delay hook.
void set_debug_worker_kill_after(DeviceId device, long long requests);

/// Chaos hook — hang simulation: while set, the worker for `device` wedges
/// its reply leg (computes, then sleeps in 1 ms slices before sending), so
/// the coordinator observes silence rather than EOF.  The stall breaks when
/// the flag clears, the worker's own connection is closed (stop()), or a
/// 60 s hard cap expires.
void set_debug_worker_stall(DeviceId device, bool stalled);

/// Chaos hook — real crash: the worker for `device` raises SIGSEGV on
/// receipt of its `requests`-th subsequent WorkRequest (after journaling the
/// accept), exercising the postmortem capture path end to end.  Only
/// meaningful when the worker runs in its own process (multiprocess
/// clusters); in-process it would take the whole test down.  requests <= 0
/// clears the injection.
void set_debug_worker_segv_after(DeviceId device, long long requests);

/// Clears every kill/stall/segv injection (the delay hook has its own clear).
void clear_debug_worker_faults();

class Worker {
 public:
  /// The worker holds a reference to the (immutable, finalized) graph — in a
  /// real deployment each device owns a copy of its model segment; sharing
  /// the weights here changes nothing observable.  `device` is an optional
  /// label the owner uses to attribute this worker's counters (-1 = none).
  Worker(const nn::Graph& graph, std::unique_ptr<Connection> connection,
         DeviceId device = -1, const nn::ExecOptions& options = {});
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  void start();
  /// Close the connection and join the thread (idempotent).
  void stop();

  /// Requests this worker computed, counted at serve time: a request whose
  /// reply leg fails is still served work and still shows up here (and in
  /// the pico_worker_requests_total metric).
  long long requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  DeviceId device() const { return device_; }

 private:
  void run();

  const nn::Graph& graph_;
  // sched-exempt: set in the constructor; afterwards close() (the only
  // mutation) is itself thread-safe on every Connection.
  std::unique_ptr<Connection> connection_;
  // sched-exempt: immutable after construction.
  DeviceId device_ = -1;
  // sched-exempt: immutable after construction.
  nn::ExecOptions options_;
  // sched-exempt: written by start(), joined by stop(); the owner
  // serializes both (documented single-owner API).
  SchedThread thread_;
  std::atomic<long long> requests_{0};
};

}  // namespace pico::runtime
