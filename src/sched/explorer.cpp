#include "sched/explorer.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <type_traits>

namespace pico::sched {

namespace {

constexpr int kNoOwner = -1;

/// splitmix64: decorrelates (base seed, schedule index) into a per-schedule
/// rng stream.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state = mix(state, 0x2545f4914f6cdd1dULL);
    return state;
  }
};

struct ThreadRec {
  enum class State {
    Runnable,
    Running,
    BlockedMutex,
    BlockedCond,
    BlockedJoin,
    Finished,
    Parked,
  };

  int tid = 0;
  State state = State::Runnable;
  std::condition_variable cv;
  bool granted = false;
  const void* wait_object = nullptr;  // mutex / condvar / joined ThreadRec
  bool notified = false;              // condvar wakeup delivered
  std::vector<const void*> held;      // model-held mutexes
  const char* label = "";             // last PICO_SCHED_OP annotation
  std::int64_t priority = 0;          // random (PCT) mode
};

/// One scheduler choice.  `order` lists the candidate values (thread ids,
/// or waiter ids for a notify decision) in enumeration order — the default
/// pick first — so DFS backtracking is `chosen_pos + 1`.
struct DecisionRec {
  std::vector<int> order;
  int chosen_pos = 0;
  /// True at yield points: order[0] is the running thread, every other
  /// choice costs one preemption against the bound.
  bool switch_costs = false;
  int preemptions_before = 0;
};

struct Outcome {
  Verdict verdict = Verdict::Ok;
  std::string detail;
  std::vector<DecisionRec> decisions;
  std::vector<std::string> steps;
  std::size_t step_count = 0;
  std::size_t prescribed_consumed = 0;
};

}  // namespace

/// One schedule's worth of scheduler state.  All managed threads of the
/// schedule synchronize on mu_; exactly one is ever granted (running user
/// code) at a time.  On failure the schedule is *abandoned*: every thread
/// parks forever on its cv (holding a shared_ptr to this object), which
/// intentionally leaks the schedule's threads instead of unwinding through
/// noexcept destructors.
class Exploration : public std::enable_shared_from_this<Exploration> {
 public:
  /// `step_hint` is the expected schedule length (in scheduler steps) the
  /// PCT priority-change points are sampled over — typically the previous
  /// schedule's measured length.  Sampling over the real length is what
  /// makes a change point likely to land *inside* the run; a fixed large
  /// range would make short models effectively change-point-free.
  Exploration(const ExploreOptions& options, LockGraph* graph,
              std::vector<int> prescribed, bool random, std::uint64_t seed,
              std::size_t step_hint)
      : options_(options),
        graph_(graph),
        prescribed_(std::move(prescribed)),
        random_(random),
        rng_{seed} {
    if (random_) {
      const std::uint64_t range = std::max<std::size_t>(step_hint, 4);
      for (int i = 0; i < options_.priority_change_points; ++i) {
        priority_change_steps_.push_back(
            static_cast<std::size_t>(1 + rng_.next() % range));
      }
    }
  }

  ThreadRec* register_thread() {
    std::unique_lock<std::mutex> lk(mu_);
    auto rec = std::make_unique<ThreadRec>();
    rec->tid = static_cast<int>(threads_.size());
    rec->priority =
        random_ ? static_cast<std::int64_t>(rng_.next() >> 1) : 0;
    threads_.push_back(std::move(rec));
    return threads_.back().get();
  }

  void start() {
    std::unique_lock<std::mutex> lk(mu_);
    grant(threads_[0].get());
  }

  /// Main-thread wait; true = schedule ran to completion (join the root),
  /// false = abandoned (detach it).
  bool wait_finished() {
    std::unique_lock<std::mutex> lk(mu_);
    main_cv_.wait(lk, [&] { return done_ || abandoned_; });
    return done_;
  }

  Outcome outcome() {
    std::unique_lock<std::mutex> lk(mu_);
    Outcome out;
    out.verdict = verdict_;
    out.detail = detail_;
    out.decisions = decisions_;
    out.steps = step_log_;
    out.step_count = steps_;
    out.prescribed_consumed =
        std::min(decisions_.size(), prescribed_.size());
    return out;
  }

  // --- called from managed threads -------------------------------------

  void thread_begin(ThreadRec* rec) {
    std::unique_lock<std::mutex> lk(mu_);
    wait_for_grant(rec, lk);
  }

  void thread_end(ThreadRec* rec) {
    std::unique_lock<std::mutex> lk(mu_);
    rec->state = ThreadRec::State::Finished;
    for (const std::unique_ptr<ThreadRec>& other : threads_) {
      if (other->state == ThreadRec::State::BlockedJoin &&
          other->wait_object == rec) {
        other->state = ThreadRec::State::Runnable;
      }
    }
    schedule_from(lk, rec);
  }

  void spawn_point(ThreadRec* parent) {
    std::unique_lock<std::mutex> lk(mu_);
    yield_point(lk, parent);
  }

  void model_join(ThreadRec* rec, ThreadRec* target) {
    std::unique_lock<std::mutex> lk(mu_);
    while (target->state != ThreadRec::State::Finished) {
      rec->state = ThreadRec::State::BlockedJoin;
      rec->wait_object = target;
      schedule_from(lk, rec);
    }
  }

  void model_lock(ThreadRec* rec, const void* mutex) {
    std::unique_lock<std::mutex> lk(mu_);
    yield_point(lk, rec);  // pre-acquire scheduling point
    acquire(lk, rec, mutex);
  }

  void model_unlock(ThreadRec* rec, const void* mutex) {
    std::unique_lock<std::mutex> lk(mu_);
    release(rec, mutex);
  }

  void model_cond_wait(ThreadRec* rec, const void* condvar,
                       const void* mutex) {
    std::unique_lock<std::mutex> lk(mu_);
    release(rec, mutex);
    rec->state = ThreadRec::State::BlockedCond;
    rec->wait_object = condvar;
    rec->notified = false;
    schedule_from(lk, rec);  // returns once notified and granted
    acquire(lk, rec, mutex);
  }

  void model_cond_notify(ThreadRec* rec, const void* condvar, bool all) {
    std::unique_lock<std::mutex> lk(mu_);
    std::vector<int> waiters;
    for (const std::unique_ptr<ThreadRec>& other : threads_) {
      if (other->state == ThreadRec::State::BlockedCond &&
          other->wait_object == condvar) {
        waiters.push_back(other->tid);
      }
    }
    if (waiters.empty()) return;
    if (all) {
      for (int tid : waiters) wake_waiter(tid);
      return;
    }
    // notify_one with several waiters: which one wakes is a decision.
    int chosen = waiters[0];
    if (waiters.size() > 1) {
      chosen = pick(lk, rec, waiters, /*switch_costs=*/false);
    }
    wake_waiter(chosen);
  }

  void model_yield(ThreadRec* rec, const char* label) {
    std::unique_lock<std::mutex> lk(mu_);
    rec->label = label;
    // An explicit yield is a fairness hint.  In PCT random mode, demote the
    // yielder below every other thread — otherwise a poll-with-yield loop
    // (future polls, wait_for retry loops) on the highest-priority thread
    // spins to the step limit without ever letting the progress it waits on
    // run.  Exhaustive mode ignores priorities; prescribed replays ignore
    // this entirely.
    if (random_) rec->priority = low_priority_--;
    yield_point(lk, rec);
  }

  void fail_check(ThreadRec* rec, const char* message) {
    std::unique_lock<std::mutex> lk(mu_);
    abandon(lk, Verdict::CheckFailed,
            std::string("sched::check failed: ") + message, rec);
  }

  void fail_exception(ThreadRec* rec, const char* what) {
    std::unique_lock<std::mutex> lk(mu_);
    abandon(lk, Verdict::Exception,
            std::string("exception escaped t") + std::to_string(rec->tid) +
                ": " + what,
            rec);
  }

 private:
  void grant(ThreadRec* rec) {
    rec->granted = true;
    rec->state = ThreadRec::State::Running;
    rec->cv.notify_all();
  }

  void wait_for_grant(ThreadRec* rec, std::unique_lock<std::mutex>& lk) {
    rec->cv.wait(lk, [&] { return rec->granted || abandoned_; });
    if (abandoned_) park(rec, lk);  // never returns
    rec->granted = false;
    rec->state = ThreadRec::State::Running;
    rec->wait_object = nullptr;
  }

  void park(ThreadRec* rec, std::unique_lock<std::mutex>& lk) {
    rec->state = ThreadRec::State::Parked;
    for (;;) rec->cv.wait(lk);
  }

  /// Record the schedule's failure and park every thread.  `rec` is the
  /// reporting thread (parked here, so this never returns), or nullptr
  /// when the reporter already finished.
  void abandon(std::unique_lock<std::mutex>& lk, Verdict verdict,
               std::string detail, ThreadRec* rec) {
    if (!abandoned_ && !done_) {
      abandoned_ = true;
      verdict_ = verdict;
      detail_ = std::move(detail);
      for (const std::unique_ptr<ThreadRec>& other : threads_) {
        other->cv.notify_all();
      }
      main_cv_.notify_all();
    }
    if (rec != nullptr) park(rec, lk);
  }

  void wake_waiter(int tid) {
    ThreadRec* rec = threads_[static_cast<std::size_t>(tid)].get();
    rec->state = ThreadRec::State::Runnable;
    rec->notified = true;
  }

  void acquire(std::unique_lock<std::mutex>& lk, ThreadRec* rec,
               const void* mutex) {
    for (const void* held : rec->held) graph_->add_edge(held, mutex);
    while (owner_of(mutex) != kNoOwner) {
      rec->state = ThreadRec::State::BlockedMutex;
      rec->wait_object = mutex;
      schedule_from(lk, rec);
    }
    owners_[mutex] = rec->tid;
    rec->held.push_back(mutex);
  }

  void release(ThreadRec* rec, const void* mutex) {
    owners_[mutex] = kNoOwner;
    rec->held.erase(std::find(rec->held.begin(), rec->held.end(), mutex));
    for (const std::unique_ptr<ThreadRec>& other : threads_) {
      if (other->state == ThreadRec::State::BlockedMutex &&
          other->wait_object == mutex) {
        other->state = ThreadRec::State::Runnable;
      }
    }
  }

  int owner_of(const void* mutex) const {
    auto it = owners_.find(mutex);
    return it == owners_.end() ? kNoOwner : it->second;
  }

  /// Per-scheduling-point accounting; abandons runaway schedules.  Parks
  /// (never returns) when `rec` is still live and the budget is blown.
  void count_step(std::unique_lock<std::mutex>& lk, ThreadRec* rec) {
    if (++steps_ <= options_.max_steps) return;
    abandon(lk, Verdict::StepLimit,
            "schedule exceeded " + std::to_string(options_.max_steps) +
                " scheduling points",
            rec->state == ThreadRec::State::Finished ? nullptr : rec);
  }

  /// Scheduling point for a still-runnable thread: maybe switch away
  /// (costs one preemption), return once this thread is granted again.
  void yield_point(std::unique_lock<std::mutex>& lk, ThreadRec* rec) {
    count_step(lk, rec);
    rec->state = ThreadRec::State::Runnable;
    std::vector<int> candidates = runnable_tids();
    int chosen = candidates[0];
    if (candidates.size() > 1) {
      chosen = pick(lk, rec, candidates, /*switch_costs=*/true);
    }
    if (chosen == rec->tid) {
      rec->state = ThreadRec::State::Running;
      log_step(rec->tid, rec->label);
      return;
    }
    ++preemptions_;
    ThreadRec* next = threads_[static_cast<std::size_t>(chosen)].get();
    log_step(chosen, next->label);
    grant(next);
    wait_for_grant(rec, lk);
  }

  /// Scheduling point for a thread that just blocked or finished: hand the
  /// token to some runnable thread.  For a blocked `rec`, returns once it
  /// is woken and granted again; for a finished `rec`, returns
  /// immediately after the handoff (or declares completion/quiescence).
  void schedule_from(std::unique_lock<std::mutex>& lk, ThreadRec* rec) {
    count_step(lk, rec);
    const bool finished = rec->state == ThreadRec::State::Finished;
    std::vector<int> candidates = runnable_tids();
    if (candidates.empty()) {
      quiescence(lk, rec);
      return;  // reached only when the schedule completed cleanly
    }
    int chosen = candidates[0];
    if (candidates.size() > 1) {
      chosen = pick(lk, rec, candidates, /*switch_costs=*/false);
    }
    ThreadRec* next = threads_[static_cast<std::size_t>(chosen)].get();
    log_step(chosen, next->label);
    grant(next);
    if (!finished) wait_for_grant(rec, lk);
  }

  /// No runnable thread: either every thread finished (schedule complete)
  /// or the live ones are all blocked (deadlock / lost wakeup).
  void quiescence(std::unique_lock<std::mutex>& lk, ThreadRec* rec) {
    bool any_live = false;
    bool any_cond = false;
    std::string blocked;
    for (const std::unique_ptr<ThreadRec>& other : threads_) {
      const char* how = nullptr;
      switch (other->state) {
        case ThreadRec::State::BlockedMutex:
          how = "blocked acquiring ";
          break;
        case ThreadRec::State::BlockedCond:
          how = "waiting on ";
          any_cond = true;
          break;
        case ThreadRec::State::BlockedJoin:
          how = "joining ";
          break;
        default:
          break;
      }
      if (how == nullptr) continue;
      any_live = true;
      if (!blocked.empty()) blocked += "; ";
      blocked += "t" + std::to_string(other->tid) + " " + how;
      if (other->state == ThreadRec::State::BlockedJoin) {
        blocked +=
            "t" + std::to_string(
                      static_cast<const ThreadRec*>(other->wait_object)->tid);
      } else {
        blocked += object_name(other->wait_object);
      }
      if (other->label != nullptr && other->label[0] != '\0') {
        blocked += std::string(" [") + other->label + "]";
      }
    }
    if (!any_live) {
      done_ = true;
      main_cv_.notify_all();
      return;
    }
    const Verdict verdict =
        any_cond ? Verdict::LostWakeup : Verdict::Deadlock;
    abandon(lk, verdict, blocked,
            rec->state == ThreadRec::State::Finished ? nullptr : rec);
  }

  std::vector<int> runnable_tids() const {
    std::vector<int> tids;
    for (const std::unique_ptr<ThreadRec>& rec : threads_) {
      if (rec->state == ThreadRec::State::Runnable) tids.push_back(rec->tid);
    }
    return tids;
  }

  /// Choose among `candidates` (sorted thread/waiter ids): prescribed
  /// prefix first, then PCT priorities (random mode) or the default
  /// current-thread-first policy (exhaustive mode).  Records a DecisionRec
  /// whenever there was a real choice.
  int pick(std::unique_lock<std::mutex>& lk, ThreadRec* rec,
           const std::vector<int>& candidates, bool switch_costs) {
    std::vector<int> order;
    if (switch_costs &&
        std::find(candidates.begin(), candidates.end(), rec->tid) !=
            candidates.end()) {
      order.push_back(rec->tid);
      for (int tid : candidates) {
        if (tid != rec->tid) order.push_back(tid);
      }
    } else {
      order = candidates;
    }

    int pos = 0;
    if (decisions_.size() < prescribed_.size()) {
      const int want = prescribed_[decisions_.size()];
      auto it = std::find(order.begin(), order.end(), want);
      if (it == order.end()) {
        abandon(lk, Verdict::Divergence,
                "prescribed decision " + std::to_string(want) +
                    " impossible at step " +
                    std::to_string(decisions_.size()) +
                    " — the model is nondeterministic",
                rec->state == ThreadRec::State::Finished ? nullptr : rec);
      }
      pos = static_cast<int>(it - order.begin());
    } else if (random_) {
      if (std::find(priority_change_steps_.begin(),
                    priority_change_steps_.end(),
                    steps_) != priority_change_steps_.end()) {
        // PCT priority-change point: demote the current thread below all.
        rec->priority = low_priority_--;
      }
      pos = 0;
      for (std::size_t i = 1; i < order.size(); ++i) {
        const std::int64_t best =
            threads_[static_cast<std::size_t>(
                         order[static_cast<std::size_t>(pos)])]
                ->priority;
        if (threads_[static_cast<std::size_t>(order[i])]->priority > best) {
          pos = static_cast<int>(i);
        }
      }
    }
    decisions_.push_back(
        {order, pos, switch_costs, preemptions_});
    return order[static_cast<std::size_t>(pos)];
  }

  void log_step(int tid, const char* label) {
    if (steps_logged_ >= kMaxLoggedSteps) return;
    ++steps_logged_;
    std::string entry = "t" + std::to_string(tid);
    if (label != nullptr && label[0] != '\0') {
      entry += std::string(" [") + label + "]";
    }
    step_log_.push_back(std::move(entry));
  }

  static constexpr std::size_t kMaxLoggedSteps = 2000;

  const ExploreOptions options_;
  LockGraph* graph_;
  const std::vector<int> prescribed_;
  const bool random_;
  Rng rng_;
  std::vector<std::size_t> priority_change_steps_;

  std::mutex mu_;
  std::condition_variable main_cv_;
  std::vector<std::unique_ptr<ThreadRec>> threads_;
  std::map<const void*, int> owners_;
  std::vector<DecisionRec> decisions_;
  std::vector<std::string> step_log_;
  std::size_t steps_logged_ = 0;
  std::size_t steps_ = 0;
  int preemptions_ = 0;
  std::int64_t low_priority_ = -1;
  bool done_ = false;
  bool abandoned_ = false;
  Verdict verdict_ = Verdict::Ok;
  std::string detail_;
};

namespace {

// Per-thread scheduler state.  MUST stay trivially destructible: the
// pass-through hooks run from *static destructors* (e.g. the global
// ThreadPool locking its Mutex during exit()), and glibc destroys TLS
// objects before static destructors run.  A nontrivial member (vector,
// shared_ptr) would register a TLS destructor, and any hook firing after
// it is a use-after-free.  Ownership of the Exploration lives in the
// thread trampolines (which capture a shared_ptr for the thread's whole
// life); the TLS keeps only a raw pointer.
struct TlsState {
  Exploration* exploration = nullptr;
  ThreadRec* rec = nullptr;
  // Pass-through lockdep stack.  Fixed-size so the struct stays trivial;
  // deeper nesting stops recording edges (never UB, never wrong edges).
  static constexpr int kMaxHeld = 64;
  const void* held[kMaxHeld];
  int held_count = 0;
};
static_assert(std::is_trivially_destructible_v<TlsState>,
              "TLS hooks run during static destruction; see comment");

TlsState& tls() {
  static thread_local TlsState state;
  return state;
}

std::string decisions_to_string(const std::vector<DecisionRec>& decisions) {
  std::string out;
  for (const DecisionRec& d : decisions) {
    if (!out.empty()) out += ",";
    out += std::to_string(d.order[static_cast<std::size_t>(d.chosen_pos)]);
  }
  return out;
}

std::vector<int> parse_decisions(const std::string& text) {
  std::vector<int> out;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (item.empty()) continue;
    out.push_back(std::stoi(item));
  }
  return out;
}

Outcome run_schedule(const ExploreOptions& options, LockGraph* graph,
                     const std::vector<int>& prescribed, bool random,
                     std::uint64_t seed, const std::function<void()>& body,
                     std::size_t step_hint = 64) {
  auto exploration = std::make_shared<Exploration>(
      options, graph, prescribed, random, seed, step_hint);
  ThreadRec* root = exploration->register_thread();
  std::thread sys([exploration, root, &body] {
    TlsState& state = tls();
    state.exploration = exploration.get();
    state.rec = root;
    exploration->thread_begin(root);
    try {
      body();
    } catch (const std::exception& error) {
      exploration->fail_exception(root, error.what());
    } catch (...) {
      exploration->fail_exception(root, "non-std exception");
    }
    exploration->thread_end(root);
  });
  exploration->start();
  const bool finished = exploration->wait_finished();
  if (finished) {
    sys.join();
  } else {
    sys.detach();  // parked forever; intentionally leaked
  }
  Outcome out = exploration->outcome();
  if (out.verdict == Verdict::Ok &&
      out.prescribed_consumed < prescribed.size()) {
    out.verdict = Verdict::Divergence;
    out.detail = "schedule completed after " +
                 std::to_string(out.decisions.size()) +
                 " decisions, before consuming the prescribed " +
                 std::to_string(prescribed.size());
  }
  return out;
}

ScheduleFailure make_failure(const Outcome& out, std::size_t index,
                             std::uint64_t seed) {
  ScheduleFailure failure;
  failure.verdict = out.verdict;
  failure.detail = out.detail;
  failure.decisions = decisions_to_string(out.decisions);
  failure.seed = seed;
  failure.schedule_index = index;
  failure.steps = out.steps;
  return failure;
}

/// DFS backtracking: mutate `prefix` to the next unexplored schedule.
/// Returns false when the bounded frontier is exhausted.
bool advance_prefix(const ExploreOptions& options,
                    const std::vector<DecisionRec>& decisions,
                    std::vector<int>* prefix) {
  for (int i = static_cast<int>(decisions.size()) - 1; i >= 0; --i) {
    const DecisionRec& d = decisions[static_cast<std::size_t>(i)];
    for (int next = d.chosen_pos + 1;
         next < static_cast<int>(d.order.size()); ++next) {
      const int cost = d.switch_costs && next > 0 ? 1 : 0;
      if (d.preemptions_before + cost > options.preemption_bound) continue;
      prefix->clear();
      for (int j = 0; j < i; ++j) {
        const DecisionRec& earlier = decisions[static_cast<std::size_t>(j)];
        prefix->push_back(
            earlier.order[static_cast<std::size_t>(earlier.chosen_pos)]);
      }
      prefix->push_back(d.order[static_cast<std::size_t>(next)]);
      return true;
    }
  }
  return false;
}

}  // namespace

const char* verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::Ok:
      return "ok";
    case Verdict::Deadlock:
      return "deadlock";
    case Verdict::LostWakeup:
      return "lost-wakeup";
    case Verdict::CheckFailed:
      return "check-failed";
    case Verdict::Exception:
      return "exception";
    case Verdict::StepLimit:
      return "step-limit";
    case Verdict::Divergence:
      return "divergence";
  }
  return "unknown";
}

std::string ScheduleFailure::to_string() const {
  std::string out = std::string("verdict: ") + verdict_name(verdict) + "\n";
  out += "detail: " + detail + "\n";
  out += "schedule: " + std::to_string(schedule_index) + "\n";
  out += "seed: " + std::to_string(seed) + "\n";
  out += "decisions: " + (decisions.empty() ? "<none>" : decisions) + "\n";
  out += "steps:";
  for (const std::string& step : steps) out += " " + step;
  out += "\n";
  return out;
}

std::string ExploreResult::summary() const {
  std::string out = std::to_string(schedules_run) + " schedule(s), " +
                    (complete ? "frontier complete" : "frontier bounded") +
                    ", " + std::to_string(failures.size()) + " failure(s), " +
                    std::to_string(lock_cycles.size()) + " lock cycle(s)";
  for (const ScheduleFailure& failure : failures) {
    out += "\n--- failure ---\n" + failure.to_string();
  }
  for (const std::string& cycle : lock_cycles) {
    out += "\nlock-order cycle: " + cycle;
  }
  return out;
}

ExploreResult explore(const ExploreOptions& options,
                      const std::function<void()>& body) {
  if (tls().rec != nullptr) {
    throw std::logic_error("sched::explore may not be nested");
  }
  LockGraph graph;
  ExploreResult result;

  if (options.mode == Mode::Exhaustive) {
    std::vector<int> prefix;
    for (;;) {
      Outcome out = run_schedule(options, &graph, prefix, false, 0, body);
      ++result.schedules_run;
      if (options.keep_schedules) {
        result.schedule_decisions.push_back(
            decisions_to_string(out.decisions));
      }
      if (out.verdict != Verdict::Ok) {
        result.failures.push_back(
            make_failure(out, result.schedules_run - 1, 0));
        // A divergence makes DFS replay unsound; stop either way.
        if (out.verdict == Verdict::Divergence ||
            options.stop_on_first_failure) {
          break;
        }
      }
      if (!advance_prefix(options, out.decisions, &prefix)) {
        result.complete = true;
        break;
      }
      if (result.schedules_run >= options.max_schedules) break;
    }
  } else {
    // The PCT change-point range adapts to the measured schedule length:
    // schedule k samples its change points over schedule k-1's step count.
    std::size_t step_hint = 64;
    for (std::size_t k = 0; k < options.random_schedules; ++k) {
      const std::uint64_t seed = mix(options.seed, k);
      Outcome out =
          run_schedule(options, &graph, {}, true, seed, body, step_hint);
      step_hint = std::max<std::size_t>(out.step_count, 4);
      ++result.schedules_run;
      if (options.keep_schedules) {
        result.schedule_decisions.push_back(
            decisions_to_string(out.decisions));
      }
      if (out.verdict != Verdict::Ok) {
        result.failures.push_back(make_failure(out, k, seed));
        if (options.stop_on_first_failure) break;
      }
    }
  }

  result.lock_cycles = graph.cycle_strings();
  return result;
}

ScheduleFailure replay(const std::string& decisions,
                       const std::function<void()>& body) {
  if (tls().rec != nullptr) {
    throw std::logic_error("sched::replay may not be nested");
  }
  ExploreOptions options;
  LockGraph graph;
  Outcome out =
      run_schedule(options, &graph, parse_decisions(decisions), false, 0,
                   body);
  return make_failure(out, 0, 0);
}

bool under_exploration() { return tls().rec != nullptr; }

bool check(bool condition, const char* message) {
  TlsState& state = tls();
  if (!condition && state.rec != nullptr && state.exploration != nullptr) {
    state.exploration->fail_check(state.rec, message);  // parks; no return
  }
  return condition;
}

void yield(const char* label) {
  TlsState& state = tls();
  if (state.rec != nullptr && state.exploration != nullptr) {
    state.exploration->model_yield(state.rec, label);
  }
}

int write_failure_artifacts(const ExploreResult& result,
                            const std::string& name) {
  const char* dir = std::getenv("PICO_SCHED_ARTIFACT_DIR");
  if (dir == nullptr || dir[0] == '\0' || result.ok()) return 0;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return 0;
  int written = 0;
  for (std::size_t i = 0; i < result.failures.size(); ++i) {
    const std::filesystem::path path =
        std::filesystem::path(dir) /
        (name + "-" + std::to_string(i) + ".txt");
    std::ofstream file(path);
    if (!file) continue;
    file << result.failures[i].to_string();
    ++written;
  }
  if (!result.lock_cycles.empty()) {
    const std::filesystem::path path =
        std::filesystem::path(dir) / (name + "-lockdep.txt");
    std::ofstream file(path);
    if (file) {
      for (const std::string& cycle : result.lock_cycles) {
        file << cycle << "\n";
      }
      ++written;
    }
  }
  return written;
}

std::vector<std::string> global_lock_cycles() {
  return LockGraph::global().cycle_strings();
}

ManagedThread::ManagedThread(std::function<void()> fn) {
  TlsState& state = tls();
  if (state.rec != nullptr && state.exploration != nullptr) {
    exploration_ = state.exploration->shared_from_this();
    ThreadRec* rec = exploration_->register_thread();
    record_ = rec;
    std::shared_ptr<Exploration> exploration = exploration_;
    thread_ = std::thread([exploration, rec, fn = std::move(fn)] {
      TlsState& child = tls();
      child.exploration = exploration.get();
      child.rec = rec;
      exploration->thread_begin(rec);
      try {
        fn();
      } catch (const std::exception& error) {
        exploration->fail_exception(rec, error.what());
      } catch (...) {
        exploration->fail_exception(rec, "non-std exception");
      }
      exploration->thread_end(rec);
    });
    exploration_->spawn_point(state.rec);
  } else {
    thread_ = std::thread(std::move(fn));
  }
}

void ManagedThread::join() {
  TlsState& state = tls();
  if (exploration_ != nullptr && state.rec != nullptr &&
      state.exploration == exploration_.get()) {
    exploration_->model_join(state.rec,
                             static_cast<ThreadRec*>(record_));
  }
  thread_.join();
}

namespace hook {

bool mutex_lock(void* mutex) {
  TlsState& state = tls();
  if (state.rec != nullptr && state.exploration != nullptr) {
    state.exploration->model_lock(state.rec, mutex);
    return true;
  }
  for (int i = 0; i < state.held_count; ++i) {
    LockGraph::global().add_edge(state.held[i], mutex);
  }
  if (state.held_count < TlsState::kMaxHeld) {
    state.held[state.held_count++] = mutex;
  }
  return false;
}

bool mutex_unlock(void* mutex) {
  TlsState& state = tls();
  if (state.rec != nullptr && state.exploration != nullptr) {
    state.exploration->model_unlock(state.rec, mutex);
    return true;
  }
  for (int i = state.held_count - 1; i >= 0; --i) {
    if (state.held[i] != mutex) continue;
    for (int j = i + 1; j < state.held_count; ++j) {
      state.held[j - 1] = state.held[j];
    }
    --state.held_count;
    break;
  }
  return false;
}

bool cond_wait(void* condvar, void* mutex) {
  TlsState& state = tls();
  if (state.rec != nullptr && state.exploration != nullptr) {
    state.exploration->model_cond_wait(state.rec, condvar, mutex);
    return true;
  }
  return false;
}

bool cond_notify(void* condvar, bool notify_all) {
  TlsState& state = tls();
  if (state.rec != nullptr && state.exploration != nullptr) {
    state.exploration->model_cond_notify(state.rec, condvar, notify_all);
    return true;
  }
  return false;
}

void op_label(const char* label) {
  TlsState& state = tls();
  if (state.rec != nullptr) state.rec->label = label;
}

}  // namespace hook

}  // namespace pico::sched
