// Lockdep-style lock-order verification.
//
// Every Mutex acquisition records "acquired while holding" edges into a
// LockGraph; a cycle in that graph (A taken while holding B on one path, B
// taken while holding A on another) is a potential deadlock even if no
// explored schedule actually deadlocked — the two paths only have to
// overlap in time once in production.  The explorer feeds one graph per
// explore() call (managed threads); the instrumented wrappers additionally
// feed a process-global graph from ordinary threads, so a whole test binary
// accumulates its real lock order for a final check.
//
// Implementation note: this layer uses raw std primitives on purpose — it
// is called from inside the pico::Mutex hooks and must not recurse into
// them.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace pico::sched {

/// Human-readable name for a lock (or any sync object) address.  Unnamed
/// objects format as "Mutex@0x...".
void name_object(const void* object, std::string name);
std::string object_name(const void* object);

/// Directed graph over lock addresses: edge held -> acquired means
/// `acquired` was taken while `held` was held.  Internally synchronized;
/// safe to feed from concurrent (unmanaged) threads.
class LockGraph {
 public:
  void add_edge(const void* held, const void* acquired);
  void clear();

  std::size_t edge_count() const;

  /// Every elementary cycle family, one representative per strongly
  /// connected component with >= 2 nodes (plus self-loops).  Nodes are
  /// listed in a deterministic order with the closing node repeated, e.g.
  /// {A, B, A}.
  std::vector<std::vector<const void*>> cycles() const;

  /// cycles() rendered with object_name(): "A -> B -> A".
  std::vector<std::string> cycle_strings() const;

  /// Graph fed by non-explored (pass-through) lock operations.
  static LockGraph& global();

 private:
  mutable std::mutex mutex_;
  std::map<const void*, std::set<const void*>> edges_;
};

}  // namespace pico::sched
