#include "sched/lockdep.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>

namespace pico::sched {

namespace {

struct NameRegistry {
  std::mutex mutex;
  std::map<const void*, std::string> names;

  static NameRegistry& instance() {
    static NameRegistry* registry = new NameRegistry;
    return *registry;
  }
};

}  // namespace

void name_object(const void* object, std::string name) {
  NameRegistry& registry = NameRegistry::instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.names[object] = std::move(name);
}

std::string object_name(const void* object) {
  NameRegistry& registry = NameRegistry::instance();
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    auto it = registry.names.find(object);
    if (it != registry.names.end()) return it->second;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "Mutex@%p", object);
  return buffer;
}

void LockGraph::add_edge(const void* held, const void* acquired) {
  std::lock_guard<std::mutex> lock(mutex_);
  edges_[held].insert(acquired);
}

void LockGraph::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  edges_.clear();
}

std::size_t LockGraph::edge_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& [node, successors] : edges_) count += successors.size();
  return count;
}

std::vector<std::vector<const void*>> LockGraph::cycles() const {
  std::map<const void*, std::set<const void*>> edges;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    edges = edges_;
  }

  // Tarjan SCC over the (small) graph.  Any SCC with more than one node
  // contains a cycle; a self-loop is a one-node cycle.
  struct NodeInfo {
    int index = -1;
    int lowlink = -1;
    bool on_stack = false;
  };
  std::map<const void*, NodeInfo> info;
  std::vector<const void*> stack;
  std::vector<std::vector<const void*>> components;
  int next_index = 0;

  std::function<void(const void*)> strongconnect =
      [&](const void* node) {
        NodeInfo& me = info[node];
        me.index = me.lowlink = next_index++;
        me.on_stack = true;
        stack.push_back(node);
        auto it = edges.find(node);
        if (it != edges.end()) {
          for (const void* next : it->second) {
            NodeInfo& other = info[next];
            if (other.index < 0) {
              strongconnect(next);
              me.lowlink = std::min(me.lowlink, info[next].lowlink);
            } else if (other.on_stack) {
              me.lowlink = std::min(me.lowlink, other.index);
            }
          }
        }
        if (me.lowlink == me.index) {
          std::vector<const void*> component;
          for (;;) {
            const void* popped = stack.back();
            stack.pop_back();
            info[popped].on_stack = false;
            component.push_back(popped);
            if (popped == node) break;
          }
          components.push_back(std::move(component));
        }
      };

  for (const auto& [node, successors] : edges) {
    if (info[node].index < 0) strongconnect(node);
    for (const void* next : successors) {
      if (info[next].index < 0) strongconnect(next);
    }
  }

  std::vector<std::vector<const void*>> result;
  for (std::vector<const void*>& component : components) {
    const bool self_loop =
        component.size() == 1 && edges[component[0]].count(component[0]) > 0;
    if (component.size() < 2 && !self_loop) continue;
    std::sort(component.begin(), component.end());
    // Walk an actual cycle inside the component, starting from its
    // smallest node, always stepping to the smallest in-component
    // successor not yet visited (falling back to the start to close).
    const void* start = component[0];
    std::set<const void*> in_component(component.begin(), component.end());
    std::vector<const void*> path{start};
    std::set<const void*> visited{start};
    const void* current = start;
    while (true) {
      const void* next = nullptr;
      for (const void* candidate : edges[current]) {
        if (candidate == start && path.size() > 1) {
          next = start;
          break;
        }
        if (in_component.count(candidate) > 0 &&
            visited.count(candidate) == 0) {
          next = candidate;
          break;
        }
        if (candidate == start && self_loop) {
          next = start;
          break;
        }
      }
      if (next == nullptr) break;  // defensive: dense SCC shortcut missed
      path.push_back(next);
      if (next == start) break;
      visited.insert(next);
      current = next;
    }
    if (path.back() != start) path.push_back(start);
    result.push_back(std::move(path));
  }
  return result;
}

std::vector<std::string> LockGraph::cycle_strings() const {
  std::vector<std::string> result;
  for (const std::vector<const void*>& cycle : cycles()) {
    std::string text;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      if (i > 0) text += " -> ";
      text += object_name(cycle[i]);
    }
    result.push_back(std::move(text));
  }
  return result;
}

LockGraph& LockGraph::global() {
  static LockGraph* graph = new LockGraph;
  return *graph;
}

}  // namespace pico::sched
