// PICO_SCHED seam: always includable, zero overhead when the flag is off.
//
//  - pico::SchedThread — std::thread normally; sched::ManagedThread under
//    PICO_SCHED, so every thread the runtime spawns (pool workers, device
//    workers, stage coordinators) registers with an active schedule
//    exploration and is serialized by the explorer.
//  - PICO_SCHED_OP("label") — annotates the current thread's next
//    scheduling points for the explorer's step log; compiles to nothing
//    without PICO_SCHED.  Never itself a scheduling point.
//
// The Mutex/CondVar wrappers in common/mutex.hpp call sched::hook::*
// directly (guarded by #ifdef PICO_SCHED) rather than through this header.
#pragma once

#ifdef PICO_SCHED

#include "sched/explorer.hpp"

namespace pico {
using SchedThread = ::pico::sched::ManagedThread;
}  // namespace pico

#define PICO_SCHED_OP(label) ::pico::sched::hook::op_label(label)

#else  // !PICO_SCHED

#include <thread>

namespace pico {
using SchedThread = ::std::thread;
}  // namespace pico

#define PICO_SCHED_OP(label) ((void)0)

#endif  // PICO_SCHED
