// Deterministic concurrency model checker (CHESS / loom style).
//
// explore(options, body) runs `body` many times.  Each run is one
// *schedule*: the managed threads the body spawns (sched::ManagedThread,
// i.e. pico::SchedThread under PICO_SCHED) are serialized — exactly one
// runs at a time — and at every scheduling point (mutex acquire, condvar
// wait/notify, thread spawn/join/end, explicit sched::yield) the explorer
// decides who runs next.  Two drivers:
//
//   - Exhaustive: depth-first enumeration of every schedule whose number
//     of *preemptions* (switching away from a runnable thread) stays
//     within `preemption_bound` — the CHESS result is that almost all
//     concurrency bugs show up within a bound of 2.
//   - Random: seeded PCT-style exploration (random thread priorities plus
//     a few random priority-change points) for models too large to
//     enumerate.
//
// Detected per schedule: deadlock (every live thread blocked on a mutex or
// join), lost wakeup (quiescence with a condvar waiter — somebody missed a
// notify), sched::check failures, exceptions escaping a managed thread,
// and runaway schedules (step limit).  Every failure carries a *decision
// string* — the comma-joined list of choices the scheduler made — which
// replay() consumes to reproduce the exact interleaving, so a failing
// schedule printed in CI can be pinned as a regression test.
//
// A failing schedule is abandoned, never unwound: its threads are parked
// forever and their resources intentionally leaked (unwinding would throw
// through noexcept destructors like ~ThreadPool).  gtest runs each test in
// this process, so keep at most a handful of failing explorations per
// binary.
//
// Rules for model bodies:
//   - All threads must be ManagedThread / SchedThread, spawned inside the
//     body (closed world): a model-held Mutex provides no exclusion
//     against a plain std::thread.  Run runtime models with PICO_THREADS=1
//     so ThreadPool::global() spawns no real workers.
//   - Never block on an uninstrumented primitive while holding the
//     schedule token (e.g. no future.get() before the runtime shutdown
//     that fulfills it) — the exploration would hang for real.
//   - Catch exceptions the model itself expects (e.g. TransportError from
//     a push racing a close); an escaping exception is a verdict.
//
// The explorer itself uses raw std primitives so its own machinery never
// re-enters the hooks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sched/lockdep.hpp"

namespace pico::sched {

class Exploration;

enum class Verdict {
  Ok,
  Deadlock,     // quiescent, every live thread blocked on mutex/join
  LostWakeup,   // quiescent with at least one condvar waiter
  CheckFailed,  // sched::check(false, ...)
  Exception,    // exception escaped a managed thread
  StepLimit,    // schedule exceeded max_steps scheduling points
  Divergence,   // prescribed decision impossible: body is nondeterministic
};

const char* verdict_name(Verdict verdict);

/// One failing (or, from replay(), possibly passing) schedule.
struct ScheduleFailure {
  Verdict verdict = Verdict::Ok;
  std::string detail;      // human-readable description
  std::string decisions;   // replayable decision string, e.g. "0,1,1,0"
  std::uint64_t seed = 0;  // random-mode seed that produced the schedule
  std::size_t schedule_index = 0;
  std::vector<std::string> steps;  // annotated step log

  std::string to_string() const;
};

enum class Mode { Exhaustive, Random };

struct ExploreOptions {
  Mode mode = Mode::Exhaustive;
  /// Exhaustive: max forced preemptions per schedule (CHESS bound).
  int preemption_bound = 2;
  /// Exhaustive: hard ceiling on schedules (complete=false when hit).
  std::size_t max_schedules = 50000;
  /// Random: number of seeded schedules to run.
  std::size_t random_schedules = 200;
  /// Random: base seed; schedule k uses mix(seed, k).
  std::uint64_t seed = 1;
  /// Per-schedule scheduling-point budget (StepLimit verdict beyond).
  std::size_t max_steps = 20000;
  /// Random: PCT priority-change points per schedule.
  int priority_change_points = 2;
  bool stop_on_first_failure = true;
  /// Record every schedule's decision string into
  /// ExploreResult::schedule_decisions (for pinning schedules).
  bool keep_schedules = false;
};

struct ExploreResult {
  std::size_t schedules_run = 0;
  /// Exhaustive mode: the bounded frontier was fully enumerated.
  bool complete = false;
  std::vector<ScheduleFailure> failures;
  /// Lock-order cycles accumulated across all schedules (lockdep): these
  /// fire even when no explored schedule deadlocked.
  std::vector<std::string> lock_cycles;
  /// Decision string per executed schedule (keep_schedules only).
  std::vector<std::string> schedule_decisions;

  bool ok() const { return failures.empty() && lock_cycles.empty(); }
  std::string summary() const;
};

/// Run `body` under systematic schedule exploration.  Must not be nested.
ExploreResult explore(const ExploreOptions& options,
                      const std::function<void()>& body);

/// Re-run `body` once under a prescribed decision string (as printed in a
/// ScheduleFailure).  Returns the schedule's record: verdict Ok means the
/// pinned interleaving passes; `decisions` echoes the choices actually
/// made (equal to `decisions` argument when the replay tracked it
/// exactly); verdict Divergence means the body no longer takes the pinned
/// path.
ScheduleFailure replay(const std::string& decisions,
                       const std::function<void()>& body);

/// True on a managed thread inside an active exploration.
bool under_exploration();

/// Model assertion: under exploration a failure records a CheckFailed
/// verdict and abandons the schedule (the calling thread parks and never
/// returns).  Outside exploration, returns `condition` so callers may
/// still assert on it.
bool check(bool condition, const char* message);

/// Explicit scheduling point (models a racy plain-memory access in toy
/// models).  No-op outside exploration.
void yield(const char* label = "yield");

/// Write `result`'s failures as text files under $PICO_SCHED_ARTIFACT_DIR
/// (one per failure, named <name>-<k>.txt) so CI can upload them.  No-op
/// when the env var is unset or the result is clean.  Returns the number
/// of files written.
int write_failure_artifacts(const ExploreResult& result,
                            const std::string& name);

/// Lock-order cycles seen by *pass-through* (non-explored) lock
/// operations since process start — the whole-binary lockdep check.
std::vector<std::string> global_lock_cycles();

/// Drop-in std::thread replacement that registers with the active
/// exploration when constructed on a managed thread; otherwise behaves
/// exactly like std::thread.  pico::SchedThread aliases this under
/// PICO_SCHED.
class ManagedThread {
 public:
  ManagedThread() = default;
  explicit ManagedThread(std::function<void()> fn);
  ManagedThread(ManagedThread&&) noexcept = default;
  ManagedThread& operator=(ManagedThread&&) = default;
  ManagedThread(const ManagedThread&) = delete;
  ManagedThread& operator=(const ManagedThread&) = delete;
  /// Like std::thread: terminates if still joinable.
  ~ManagedThread() = default;

  bool joinable() const { return thread_.joinable(); }
  void join();

 private:
  std::thread thread_;
  std::shared_ptr<Exploration> exploration_;
  void* record_ = nullptr;
};

namespace hook {

/// Instrumentation entry points called by the pico::Mutex / CondVar
/// wrappers (see common/mutex.hpp).  Each returns true when the operation
/// was *modeled* (managed thread inside an exploration) and the real
/// primitive must be skipped; false means pass through.  Pass-through
/// lock/unlock still feed the global lockdep graph.
bool mutex_lock(void* mutex);
bool mutex_unlock(void* mutex);
bool cond_wait(void* condvar, void* mutex);
bool cond_notify(void* condvar, bool notify_all);

/// Label the current thread's next scheduling points (PICO_SCHED_OP): pure
/// annotation for step logs, never a scheduling point itself.
void op_label(const char* label);

}  // namespace hook

}  // namespace pico::sched
