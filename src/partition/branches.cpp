#include "partition/branches.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "cost/flops.hpp"
#include "nn/receptive.hpp"

namespace pico::partition {

std::vector<Branch> block_branches(const nn::Graph& graph, const Unit& unit) {
  if (unit.first >= unit.last) return {};
  const nn::Node& last = graph.node(unit.last);
  if (last.kind != nn::OpKind::Concat) return {};

  // Concat inputs must be distinct and inside the unit.
  for (std::size_t i = 0; i < last.inputs.size(); ++i) {
    const int input = last.inputs[i];
    if (input < unit.first || input >= unit.last) return {};
    for (std::size_t j = i + 1; j < last.inputs.size(); ++j) {
      if (last.inputs[j] == input) return {};
    }
  }

  // Branch b's range ends at concat input b.  Ranges must be contiguous and
  // cover the block interior in order; our builders (and any topological
  // construction of independent paths) produce exactly this layout.
  std::vector<int> ends = last.inputs;
  std::sort(ends.begin(), ends.end());

  const int block_input = unit.first - 1;
  std::vector<Branch> ordered_by_range;
  int begin = unit.first;
  for (const int end : ends) {
    Branch branch;
    branch.first = begin;
    branch.last = end;
    ordered_by_range.push_back(branch);
    begin = end + 1;
  }
  if (begin != unit.last) return {};  // interior nodes not covered

  // Validate independence of every range.
  for (const Branch& branch : ordered_by_range) {
    for (int id = branch.first; id <= branch.last; ++id) {
      const nn::Node& node = graph.node(id);
      if (!node.spatially_splittable()) return {};
      for (const int input : node.inputs) {
        if (input != block_input &&
            (input < branch.first || input >= id)) {
          return {};
        }
      }
      for (const int consumer : graph.consumers(id)) {
        const bool internal = consumer > id && consumer <= branch.last;
        const bool is_join = id == branch.last && consumer == unit.last;
        if (!internal && !is_join) return {};
      }
    }
  }

  // Report branches in concat-input order with channel offsets.
  std::vector<Branch> out;
  int channel_offset = 0;
  for (const int end : last.inputs) {
    Branch branch;
    branch.last = end;
    for (const Branch& range : ordered_by_range) {
      if (range.last == end) branch.first = range.first;
    }
    branch.channel_offset = channel_offset;
    branch.channels = graph.node(end).out_shape.channels;
    channel_offset += branch.channels;
    out.push_back(branch);
  }
  PICO_CHECK(channel_offset == last.out_shape.channels);
  return out;
}

Flops branch_flops(const nn::Graph& graph, const Branch& branch) {
  Flops total = 0.0;
  for (int id = branch.first; id <= branch.last; ++id) {
    total += cost::node_flops_full(graph, id);
  }
  return total;
}

Region branch_input_region(const nn::Graph& graph, const Branch& branch) {
  const Shape out = graph.node(branch.last).out_shape;
  // Demand through the branch for its full output; external producer is the
  // block input by construction.
  const std::vector<Region> demand = nn::segment_demand(
      graph, branch.first, branch.last, Region::full(out.height, out.width));
  Region external;
  for (int id = branch.first; id <= branch.last; ++id) {
    const Region need = demand[static_cast<std::size_t>(id - branch.first)];
    if (need.empty()) continue;
    const nn::Node& node = graph.node(id);
    for (std::size_t k = 0; k < node.inputs.size(); ++k) {
      if (node.inputs[k] >= branch.first) continue;
      external = external.union_bounds(
          nn::input_region(graph, id, need, static_cast<int>(k)));
    }
  }
  return external;
}

std::vector<std::vector<int>> assign_branches(
    const nn::Graph& graph, const std::vector<Branch>& branches,
    const std::vector<double>& capacities) {
  PICO_CHECK(!branches.empty() && !capacities.empty());
  std::vector<std::size_t> order(branches.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<Flops> flops(branches.size());
  for (std::size_t b = 0; b < branches.size(); ++b) {
    flops[b] = branch_flops(graph, branches[b]);
  }
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return flops[a] > flops[b];
  });

  std::vector<std::vector<int>> assignment(capacities.size());
  std::vector<double> finish(capacities.size(), 0.0);
  for (const std::size_t b : order) {
    std::size_t best = 0;
    double best_finish = std::numeric_limits<double>::infinity();
    for (std::size_t d = 0; d < capacities.size(); ++d) {
      PICO_CHECK(capacities[d] > 0.0);
      const double candidate = finish[d] + flops[b] / capacities[d];
      if (candidate < best_finish) {
        best_finish = candidate;
        best = d;
      }
    }
    assignment[best].push_back(static_cast<int>(b));
    finish[best] = best_finish;
  }
  return assignment;
}

}  // namespace pico::partition
