#include "partition/plan_io.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace pico::partition {

std::string serialize_plan(const Plan& plan) {
  std::ostringstream os;
  os << "pico-plan v1\n";
  os << "scheme " << (plan.scheme.empty() ? "?" : plan.scheme) << "\n";
  os << "pipelined " << (plan.pipelined ? 1 : 0) << "\n";
  for (const Stage& stage : plan.stages) {
    os << "stage " << stage.first << ' ' << stage.last << ' '
       << (stage.kind == StageKind::Branch ? "branch" : "spatial") << "\n";
    for (const DeviceSlice& slice : stage.assignments) {
      os << "device " << slice.device;
      if (stage.kind == StageKind::Branch) {
        os << " branches";
        for (const int b : slice.branches) os << ' ' << b;
      } else {
        os << " region " << slice.out_region.row_begin << ' '
           << slice.out_region.row_end << ' ' << slice.out_region.col_begin
           << ' ' << slice.out_region.col_end;
      }
      os << "\n";
    }
  }
  os << "end\n";
  return os.str();
}

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw Error("plan parse error (line " + std::to_string(line) + "): " +
              message);
}

}  // namespace

Plan parse_plan(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  int line_number = 0;
  const auto next_line = [&]() -> bool {
    while (std::getline(is, line)) {
      ++line_number;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) return true;
    }
    return false;
  };

  if (!next_line() || line != "pico-plan v1") {
    fail(line_number, "expected header 'pico-plan v1'");
  }

  Plan plan;
  bool saw_scheme = false, saw_pipelined = false, saw_end = false;
  while (next_line()) {
    std::istringstream tokens(line);
    std::string keyword;
    tokens >> keyword;
    if (keyword == "scheme") {
      tokens >> plan.scheme;
      if (plan.scheme.empty()) fail(line_number, "scheme needs a name");
      saw_scheme = true;
    } else if (keyword == "pipelined") {
      int flag = -1;
      tokens >> flag;
      if (flag != 0 && flag != 1) fail(line_number, "pipelined must be 0/1");
      plan.pipelined = flag == 1;
      saw_pipelined = true;
    } else if (keyword == "stage") {
      Stage stage;
      std::string kind;
      tokens >> stage.first >> stage.last >> kind;
      if (tokens.fail()) fail(line_number, "stage needs: first last kind");
      if (kind == "branch") {
        stage.kind = StageKind::Branch;
      } else if (kind == "spatial") {
        stage.kind = StageKind::Spatial;
      } else {
        fail(line_number, "unknown stage kind '" + kind + "'");
      }
      plan.stages.push_back(std::move(stage));
    } else if (keyword == "device") {
      if (plan.stages.empty()) fail(line_number, "device before any stage");
      Stage& stage = plan.stages.back();
      DeviceSlice slice;
      std::string what;
      tokens >> slice.device >> what;
      if (tokens.fail()) fail(line_number, "device needs: id kind ...");
      if (what == "region") {
        tokens >> slice.out_region.row_begin >> slice.out_region.row_end >>
            slice.out_region.col_begin >> slice.out_region.col_end;
        if (tokens.fail()) fail(line_number, "region needs 4 integers");
        if (stage.kind != StageKind::Spatial) {
          fail(line_number, "region slice in a branch stage");
        }
      } else if (what == "branches") {
        int branch = 0;
        while (tokens >> branch) slice.branches.push_back(branch);
        if (slice.branches.empty()) {
          fail(line_number, "branches needs at least one index");
        }
        if (stage.kind != StageKind::Branch) {
          fail(line_number, "branch slice in a spatial stage");
        }
      } else {
        fail(line_number, "expected 'region' or 'branches', got '" + what +
                              "'");
      }
      stage.assignments.push_back(std::move(slice));
    } else if (keyword == "end") {
      saw_end = true;
      break;
    } else {
      fail(line_number, "unknown keyword '" + keyword + "'");
    }
  }
  if (!saw_scheme || !saw_pipelined) {
    fail(line_number, "missing scheme/pipelined header lines");
  }
  if (!saw_end) fail(line_number, "missing 'end'");
  if (plan.stages.empty()) fail(line_number, "plan has no stages");
  return plan;
}

void save_plan(const Plan& plan, const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  PICO_CHECK_MSG(file.good(), "cannot open for writing: " << path);
  file << serialize_plan(plan);
  PICO_CHECK_MSG(file.good(), "write failed: " << path);
}

Plan load_plan(const std::string& path) {
  std::ifstream file(path);
  PICO_CHECK_MSG(file.good(), "cannot open plan file: " << path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_plan(buffer.str());
}

}  // namespace pico::partition
