// Exhaustive optimal pipeline search — the paper's BFS baseline (§V-C,
// Table II, Fig. 13).
//
// Enumerates every way to (a) cut the unit chain into contiguous stages and
// (b) hand each stage a subset of the still-unused devices (output maps are
// split capacity-proportionally within a stage).  Exact but exponential in
// the device count — the point of Table II.  A wall-clock budget aborts the
// search, mirroring the paper's "> 1h" rows; `memoize` enables the
// (unit, device-mask) memo table as an ablation showing how far simple
// memoization pushes the feasible range.
#pragma once

#include <limits>

#include "cluster/cluster.hpp"
#include "nn/graph.hpp"
#include "partition/plan.hpp"

namespace pico::partition {

struct BfsOptions {
  Seconds latency_limit = std::numeric_limits<double>::infinity();
  /// Wall-clock search budget; exceeded → `timed_out`, best-so-far returned.
  Seconds time_budget = std::numeric_limits<double>::infinity();
  /// Branch-and-bound on the incumbent period.  Off = the paper's plain
  /// exhaustive baseline (visits every stage composition); on = our
  /// ablation.  Both return the same optimum when they finish.
  bool prune = true;
  bool memoize = false;
};

struct BfsResult {
  Plan plan;
  Seconds period = std::numeric_limits<double>::infinity();
  Seconds latency = std::numeric_limits<double>::infinity();
  bool timed_out = false;
  long long states_explored = 0;
  Seconds search_seconds = 0.0;
};

BfsResult bfs_optimal_plan(const nn::Graph& graph, const Cluster& cluster,
                           const NetworkModel& network,
                           const BfsOptions& options = {});

}  // namespace pico::partition
