// Plan: the output of every partitioning scheme.
//
// A Plan is an ordered list of stages.  Stage s covers the contiguous node
// range [first, last]; its devices each produce a disjoint region of node
// `last`'s output map.  `pipelined` distinguishes the paper's pipeline
// schemes (stages run concurrently on disjoint device sets; throughput is
// bounded by the slowest stage, Eq. 10) from one-stage schemes like
// LW/EFL/OFL (stages run back-to-back for each task and may reuse devices;
// period equals latency).
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "nn/graph.hpp"
#include "tensor/region.hpp"

namespace pico::partition {

struct DeviceSlice {
  DeviceId device = -1;
  Region out_region;  ///< Spatial stages: the output slice this device owns
  /// Branch stages: indices into block_branches(graph, {first, last}) this
  /// device computes (out_region is unused/empty).
  std::vector<int> branches;
};

/// How a stage parallelizes its segment across its devices.
///  - Spatial: the paper's feature-map partition (overlapping halos).
///  - Branch: intra-block branch parallelism (extension, see branches.hpp):
///    the segment must be a single multi-branch block; devices compute whole
///    branches and the outputs are stacked channel-wise.
enum class StageKind { Spatial, Branch };

struct Stage {
  int first = 0;  ///< first node id of the fused segment
  int last = 0;   ///< last node id (the stage's output map is this node's)
  StageKind kind = StageKind::Spatial;
  std::vector<DeviceSlice> assignments;

  int device_count() const { return static_cast<int>(assignments.size()); }
};

struct Plan {
  std::string scheme;  ///< "LW", "EFL", "OFL", "PICO", "BFS", ...
  bool pipelined = true;
  std::vector<Stage> stages;

  int stage_count() const { return static_cast<int>(stages.size()); }
};

/// Throws InvariantError unless:
///  - stage node ranges are contiguous and cover nodes 1..graph.size()-1,
///  - every stage is a valid fused segment,
///  - every stage's non-empty device regions tile its output map exactly,
///  - device ids are valid, unique within a stage and — for pipelined
///    plans — across stages.
void validate_plan(const nn::Graph& graph, const Cluster& cluster,
                   const Plan& plan);

/// Human-readable multi-line description (for examples and logs).
std::string describe_plan(const nn::Graph& graph, const Plan& plan);

}  // namespace pico::partition
