// Local-search plan refinement (beyond the paper).
//
// PICO's two-step heuristic (homogenized DP + greedy device assignment)
// leaves an obvious question the paper never answers: how much period is
// lost to the homogenization?  This hill climber starts from any pipelined
// spatial plan and applies three move types until no sampled move improves
// the period:
//
//   1. move a device from one stage to another,
//   2. swap two devices between stages,
//   3. shift a stage boundary by one unit,
//
// re-splitting affected stages capacity-proportionally after each move.
// Used by bench_ablation_localsearch to measure the PICO-to-local-optimum
// gap, and available to users who can afford a few hundred extra cost-model
// evaluations at planning time.
#pragma once

#include <limits>

#include "cluster/cluster.hpp"
#include "nn/graph.hpp"
#include "partition/plan.hpp"

namespace pico::partition {

struct LocalSearchOptions {
  int max_moves = 4000;      ///< sampled moves before giving up
  int patience = 600;        ///< consecutive non-improving moves to stop
  std::uint64_t seed = 1;
  Seconds latency_limit = std::numeric_limits<double>::infinity();
};

struct LocalSearchResult {
  Plan plan;
  Seconds initial_period = 0.0;
  Seconds final_period = 0.0;
  int improvements = 0;
  long long moves_tried = 0;
};

/// Refine a pipelined plan whose stages are all spatial and whose stage
/// boundaries align with partition units (every planner in this repo
/// produces such plans).  The result never has a longer period than the
/// input.
LocalSearchResult refine_plan(const nn::Graph& graph, const Cluster& cluster,
                              const NetworkModel& network, const Plan& plan,
                              const LocalSearchOptions& options = {});

}  // namespace pico::partition
