// One-stage baseline planners.
//
//  - LW  (layer-wise, MoDNN [6]):   every unit is its own stage over all
//    devices; the cluster gathers and re-scatters around every layer.
//  - EFL (early-fused-layer, DeepThings [7]): fuse the first few units over
//    all devices, run the remainder on the fastest device.
//  - OFL (optimal-fused-layer, AOFL [8]): dynamic program over fusion
//    points; each fused block runs over all devices; blocks run
//    sequentially.  Minimizes total latency (= period for one-stage
//    schemes).
//
// All three return sequential (non-pipelined) plans: the whole cluster
// serves one inference at a time, so period == latency.
#pragma once

#include <limits>

#include "cluster/cluster.hpp"
#include "nn/graph.hpp"
#include "partition/plan.hpp"

namespace pico::partition {

/// How a stage's output map is divided among its devices.
///  - Strips: horizontal strips, capacity-proportional (divide & conquer,
///    Alg. 2) — the paper's partition.
///  - Grid: DeepThings' 2-D grid of near-equal tiles (devices factored into
///    the most-square grid).  Grid tiles have ~half the halo perimeter of
///    strips for the same device count, trading heterogeneity awareness for
///    less redundant computation — see bench_ablation_grid.
enum class PartitionMode { Strips, Grid };

struct SchemeOptions {
  /// T_lim — pipeline latency bound (PICO); ignored by one-stage schemes.
  Seconds latency_limit = std::numeric_limits<double>::infinity();
  /// EFL: number of leading units to fuse; 0 = auto (fuse until the feature
  /// map shrinks to 1/16 of the input extent, DeepThings' configuration).
  int efl_fused_units = 0;
  PartitionMode partition_mode = PartitionMode::Strips;
  /// PICO extension: let the DP parallelize a single multi-branch block
  /// stage by whole branches (zero redundancy) when that beats the spatial
  /// split — addresses the paper's stated Inception limitation (§V-B).
  bool enable_branch_parallel = false;
};

/// Build a stage over `span` units with the given devices, output map split
/// capacity-proportionally (divide & conquer).
Stage make_stage(const nn::Graph& graph, const Cluster& cluster, int first,
                 int last, const std::vector<DeviceId>& devices);

/// Grid variant: equal 2-D tiles over the most-square factorization of the
/// device count (capacities are ignored, as in DeepThings).
Stage make_stage_grid(const nn::Graph& graph, int first, int last,
                      const std::vector<DeviceId>& devices);

Plan lw_plan(const nn::Graph& graph, const Cluster& cluster,
             const SchemeOptions& options = {});

Plan efl_plan(const nn::Graph& graph, const Cluster& cluster,
              const SchemeOptions& options = {});

Plan ofl_plan(const nn::Graph& graph, const Cluster& cluster,
              const NetworkModel& network, const SchemeOptions& options = {});

}  // namespace pico::partition
