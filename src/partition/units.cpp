#include "partition/units.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pico::partition {

std::vector<Unit> partition_units(const nn::Graph& graph) {
  PICO_CHECK_MSG(graph.finalized(), "graph not finalized");
  const int n = graph.size();
  PICO_CHECK_MSG(n >= 2, "graph has no compute nodes");

  // farthest_consumer[v] = max consumer id of node v (v if none).
  std::vector<int> farthest(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) farthest[static_cast<std::size_t>(v)] = v;
  for (int v = 1; v < n; ++v) {
    const nn::Node& node = graph.node(v);
    PICO_CHECK_MSG(node.spatially_splittable(),
                   "node " << node.name
                           << " is not spatially splittable; build the model "
                              "without its classifier head for planning");
    for (int input : node.inputs) {
      auto& slot = farthest[static_cast<std::size_t>(input)];
      if (v > slot) slot = v;
    }
  }

  // A cut may be placed after node v iff no edge (u -> w) with u < v and
  // w > v crosses it — v feeding later nodes is fine (v's output *is* the
  // next segment's input), but an older node reaching past v pins v inside
  // its block.  Track the farthest consumer over all nodes before v.
  std::vector<Unit> units;
  int open = 1;          // first node of the unit under construction
  int prefix_reach = 0;  // max farthest[u] for u in [0, v-1]
  for (int v = 1; v < n; ++v) {
    // Fold in nodes strictly before v (including the graph input).
    prefix_reach =
        std::max(prefix_reach, farthest[static_cast<std::size_t>(v - 1)]);
    if (prefix_reach <= v) {
      units.push_back({open, v});
      open = v + 1;
    }
  }
  PICO_CHECK_MSG(!units.empty() && units.back().last == n - 1,
                 "graph output is entangled; cannot form units");
  return units;
}

Unit unit_span(const std::vector<Unit>& units, int ui, int uj) {
  PICO_CHECK(ui >= 0 && ui <= uj &&
             uj < static_cast<int>(units.size()));
  return {units[static_cast<std::size_t>(ui)].first,
          units[static_cast<std::size_t>(uj)].last};
}

}  // namespace pico::partition
