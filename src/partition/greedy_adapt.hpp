// Algorithm 2: adapt a homogeneous stage set to the real heterogeneous
// cluster.
//
// The homogeneous plan fixes each stage's model segment and device-slot
// count.  Devices are sorted by capacity (fastest first) and assigned one by
// one to the stage with the highest remaining per-slot compute requirement
// Θ'/|D'| — so the most demanding stages get the strongest devices.  When a
// stage's slots fill up, its output map is re-split capacity-proportionally
// (divide & conquer), which is what keeps every device's finish time close
// (Table I's high utilization).
#pragma once

#include "cluster/cluster.hpp"
#include "nn/graph.hpp"
#include "partition/plan.hpp"

namespace pico::partition {

/// `homogeneous` must be a valid plan (any device ids); the result keeps its
/// stage segments and slot counts but carries real device ids and
/// capacity-proportional output splits.
Plan greedy_adapt(const nn::Graph& graph, const Cluster& cluster,
                  const Plan& homogeneous);

}  // namespace pico::partition
