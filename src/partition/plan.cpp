#include "partition/plan.hpp"

#include <set>
#include <sstream>

#include "common/error.hpp"
#include "nn/receptive.hpp"
#include "partition/branches.hpp"

namespace pico::partition {

void validate_plan(const nn::Graph& graph, const Cluster& cluster,
                   const Plan& plan) {
  PICO_CHECK_MSG(!plan.stages.empty(), "plan has no stages");
  int expected_first = 1;
  std::set<DeviceId> devices_across_stages;
  for (const Stage& stage : plan.stages) {
    PICO_CHECK_MSG(stage.first == expected_first,
                   "stage starts at node " << stage.first << ", expected "
                                           << expected_first);
    PICO_CHECK_MSG(nn::is_valid_segment(graph, stage.first, stage.last),
                   "stage [" << stage.first << ", " << stage.last
                             << "] is not a valid fused segment");
    expected_first = stage.last + 1;

    PICO_CHECK_MSG(!stage.assignments.empty(), "stage has no devices");
    const Shape out = graph.node(stage.last).out_shape;
    std::vector<Region> regions;
    std::set<DeviceId> devices_in_stage;
    std::set<int> branch_indices;
    for (const DeviceSlice& slice : stage.assignments) {
      PICO_CHECK_MSG(slice.device >= 0 && slice.device < cluster.size(),
                     "bad device id " << slice.device);
      PICO_CHECK_MSG(devices_in_stage.insert(slice.device).second,
                     "device " << slice.device << " appears twice in stage");
      if (plan.pipelined) {
        PICO_CHECK_MSG(devices_across_stages.insert(slice.device).second,
                       "device " << slice.device
                                 << " appears in two pipelined stages");
      }
      if (stage.kind == StageKind::Spatial) {
        PICO_CHECK_MSG(slice.branches.empty(),
                       "spatial stage carries branch assignments");
        if (!slice.out_region.empty()) regions.push_back(slice.out_region);
      } else {
        for (const int branch : slice.branches) {
          PICO_CHECK_MSG(branch_indices.insert(branch).second,
                         "branch " << branch << " assigned twice");
        }
      }
    }
    if (stage.kind == StageKind::Spatial) {
      PICO_CHECK_MSG(
          tiles_exactly(Region::full(out.height, out.width), regions),
          "stage output regions do not tile the " << out << " map");
    } else {
      const std::vector<Branch> branches =
          block_branches(graph, {stage.first, stage.last});
      PICO_CHECK_MSG(!branches.empty(),
                     "branch stage over a non-branch-decomposable segment ["
                         << stage.first << ", " << stage.last << "]");
      PICO_CHECK_MSG(
          branch_indices.size() == branches.size() &&
              *branch_indices.begin() == 0 &&
              *branch_indices.rbegin() ==
                  static_cast<int>(branches.size()) - 1,
          "branch assignments do not cover all "
              << branches.size() << " branches exactly once");
    }
  }
  PICO_CHECK_MSG(expected_first == graph.size(),
                 "plan covers nodes up to " << expected_first - 1
                                            << " but graph has "
                                            << graph.size() - 1);
}

std::string describe_plan(const nn::Graph& graph, const Plan& plan) {
  std::ostringstream os;
  os << plan.scheme << " plan, " << plan.stages.size() << " stage(s), "
     << (plan.pipelined ? "pipelined" : "sequential") << "\n";
  for (std::size_t s = 0; s < plan.stages.size(); ++s) {
    const Stage& stage = plan.stages[s];
    os << "  stage " << s << ": nodes [" << stage.first << ".." << stage.last
       << "] (" << graph.node(stage.first).name << " .. "
       << graph.node(stage.last).name << ")"
       << (stage.kind == StageKind::Branch ? " [branch-parallel]" : "")
       << "\n";
    for (const DeviceSlice& slice : stage.assignments) {
      if (stage.kind == StageKind::Branch) {
        os << "    device " << slice.device << " -> branches {";
        for (std::size_t b = 0; b < slice.branches.size(); ++b) {
          os << (b ? "," : "") << slice.branches[b];
        }
        os << "}\n";
      } else {
        os << "    device " << slice.device << " -> "
           << slice.out_region.height() << " rows "
           << "[" << slice.out_region.row_begin << ","
           << slice.out_region.row_end << ")\n";
      }
    }
  }
  return os.str();
}

}  // namespace pico::partition
