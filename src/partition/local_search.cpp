#include "partition/local_search.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "partition/plan_cost.hpp"
#include "partition/schemes.hpp"
#include "partition/units.hpp"

namespace pico::partition {

namespace {

/// Compact encoding the moves operate on: contiguous unit counts + device
/// sets per stage.
struct Layout {
  std::vector<int> units_per_stage;
  std::vector<std::vector<DeviceId>> devices_per_stage;

  std::size_t stage_count() const { return units_per_stage.size(); }
};

Plan materialize(const nn::Graph& graph, const Cluster& cluster,
                 const std::vector<Unit>& units, const Layout& layout,
                 const std::string& scheme) {
  Plan plan;
  plan.scheme = scheme;
  plan.pipelined = true;
  int next_unit = 0;
  for (std::size_t s = 0; s < layout.stage_count(); ++s) {
    const Unit span = unit_span(units, next_unit,
                                next_unit + layout.units_per_stage[s] - 1);
    next_unit += layout.units_per_stage[s];
    plan.stages.push_back(make_stage(graph, cluster, span.first, span.last,
                                     layout.devices_per_stage[s]));
  }
  return plan;
}

}  // namespace

LocalSearchResult refine_plan(const nn::Graph& graph, const Cluster& cluster,
                              const NetworkModel& network, const Plan& plan,
                              const LocalSearchOptions& options) {
  PICO_CHECK_MSG(plan.pipelined, "local search refines pipelined plans");
  const std::vector<Unit> units = partition_units(graph);

  // Decode the plan into the layout; verify boundary alignment.
  Layout layout;
  {
    std::size_t unit_index = 0;
    for (const Stage& stage : plan.stages) {
      PICO_CHECK_MSG(stage.kind == StageKind::Spatial,
                     "local search supports spatial stages only");
      PICO_CHECK_MSG(unit_index < units.size() &&
                         units[unit_index].first == stage.first,
                     "plan stage boundaries do not align with units");
      int count = 0;
      while (unit_index < units.size() &&
             units[unit_index].last <= stage.last) {
        ++count;
        ++unit_index;
      }
      PICO_CHECK_MSG(count > 0 && units[unit_index - 1].last == stage.last,
                     "plan stage boundaries do not align with units");
      layout.units_per_stage.push_back(count);
      std::vector<DeviceId> devices;
      for (const DeviceSlice& slice : stage.assignments) {
        devices.push_back(slice.device);
      }
      layout.devices_per_stage.push_back(std::move(devices));
    }
  }

  const auto period_of = [&](const Layout& candidate,
                             Plan& materialized) -> Seconds {
    materialized =
        materialize(graph, cluster, units, candidate, plan.scheme);
    const PlanCost cost = plan_cost(graph, cluster, network, materialized);
    if (cost.latency > options.latency_limit) {
      return std::numeric_limits<double>::infinity();
    }
    return cost.period;
  };

  LocalSearchResult result;
  Plan best_plan;
  Seconds best = period_of(layout, best_plan);
  result.initial_period = best;
  result.plan = best_plan;

  Rng rng(options.seed);
  int since_improvement = 0;
  const int stages = static_cast<int>(layout.stage_count());
  while (result.moves_tried < options.max_moves &&
         since_improvement < options.patience) {
    ++result.moves_tried;
    Layout candidate = layout;
    const int move = stages >= 2 ? rng.uniform_int(0, 2) : -1;
    if (move < 0) break;  // single stage: nothing to vary

    if (move == 0) {
      // Move one device from a donor stage (must keep >= 1) to a receiver.
      const int from = rng.uniform_int(0, stages - 1);
      const int to = rng.uniform_int(0, stages - 1);
      if (from == to || candidate.devices_per_stage[from].size() <= 1) {
        continue;
      }
      auto& donor = candidate.devices_per_stage[from];
      const int pick = rng.uniform_int(0, static_cast<int>(donor.size()) - 1);
      candidate.devices_per_stage[to].push_back(donor[pick]);
      donor.erase(donor.begin() + pick);
    } else if (move == 1) {
      // Swap one device between two stages.
      const int a = rng.uniform_int(0, stages - 1);
      const int b = rng.uniform_int(0, stages - 1);
      if (a == b) continue;
      auto& da = candidate.devices_per_stage[a];
      auto& db = candidate.devices_per_stage[b];
      const int ia = rng.uniform_int(0, static_cast<int>(da.size()) - 1);
      const int ib = rng.uniform_int(0, static_cast<int>(db.size()) - 1);
      std::swap(da[ia], db[ib]);
    } else {
      // Shift the boundary between stage s and s+1 by one unit.
      const int s = rng.uniform_int(0, stages - 2);
      const bool rightward = rng.uniform() < 0.5;
      if (rightward) {
        if (candidate.units_per_stage[s + 1] <= 1) continue;
        ++candidate.units_per_stage[s];
        --candidate.units_per_stage[s + 1];
      } else {
        if (candidate.units_per_stage[s] <= 1) continue;
        --candidate.units_per_stage[s];
        ++candidate.units_per_stage[s + 1];
      }
    }

    Plan materialized;
    const Seconds period = period_of(candidate, materialized);
    if (period < best) {
      best = period;
      best_plan = std::move(materialized);
      layout = std::move(candidate);
      ++result.improvements;
      since_improvement = 0;
    } else {
      ++since_improvement;
    }
  }

  result.final_period = best;
  result.plan = std::move(best_plan);
  validate_plan(graph, cluster, result.plan);
  return result;
}

}  // namespace pico::partition
