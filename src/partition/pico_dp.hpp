// PICO's two-step heuristic (§IV-A).
//
// Step 1 (Algorithm 1): on the homogenized cluster (Eq. 12) the optimal
// pipeline is found by dynamic programming over (prefix of units, device
// budget): a pipeline over units 1..j with p devices is either a single
// stage or an optimal sub-pipeline over 1..s followed by a tail stage over
// s+1..j with p' devices.  Stage costs come from Eq. 9 with an equal
// output-map split.  Configurations whose accumulated latency exceeds T_lim
// are pruned; among equal periods the lower-latency pipeline wins.
//
// A stage offered p devices may use fewer (q <= p) when the extra transfer
// time outweighs the compute win — the per-stage device count is itself
// minimized over q, which Algorithm 1 realizes through its p' loop.
//
// Step 2 (Algorithm 2, greedy_adapt.hpp) maps the slot counts onto the real
// heterogeneous devices.
#pragma once

#include "cluster/cluster.hpp"
#include "nn/graph.hpp"
#include "partition/plan.hpp"
#include "partition/schemes.hpp"

namespace pico::partition {

/// Algorithm 1 on the homogenized cluster.  The returned plan assigns
/// placeholder device ids 0,1,2,… in stage order (all capacities are the
/// mean, so identity is irrelevant); feed it to greedy_adapt for the real
/// cluster.  Throws if no pipeline satisfies the latency limit.
Plan pico_homogeneous_plan(const nn::Graph& graph, const Cluster& cluster,
                           const NetworkModel& network,
                           const SchemeOptions& options = {});

/// Full PICO: homogenize → Algorithm 1 → Algorithm 2.
Plan pico_plan(const nn::Graph& graph, const Cluster& cluster,
               const NetworkModel& network, const SchemeOptions& options = {});

}  // namespace pico::partition
