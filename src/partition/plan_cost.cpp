#include "partition/plan_cost.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "cost/flops.hpp"
#include "nn/receptive.hpp"
#include "partition/branches.hpp"

namespace pico::partition {

namespace {

Flops branch_slice_flops(const nn::Graph& graph,
                         const std::vector<Branch>& branches,
                         const DeviceSlice& slice) {
  Flops total = 0.0;
  for (const int index : slice.branches) {
    total += branch_flops(graph, branches[static_cast<std::size_t>(index)]);
  }
  return total;
}

}  // namespace

Seconds device_compute_time(const nn::Graph& graph, const Cluster& cluster,
                            const Stage& stage, const DeviceSlice& slice) {
  Flops flops = 0.0;
  if (stage.kind == StageKind::Branch) {
    const std::vector<Branch> branches =
        block_branches(graph, {stage.first, stage.last});
    flops = branch_slice_flops(graph, branches, slice);
  } else {
    flops =
        cost::segment_flops(graph, stage.first, stage.last, slice.out_region);
  }
  return cluster.device(slice.device).compute_time(flops);
}

StageCost stage_cost(const nn::Graph& graph, const Cluster& cluster,
                     const NetworkModel& network, const Stage& stage) {
  StageCost cost_out;
  const int in_channels = graph.node(stage.first).in_shape.channels;
  const int out_channels = graph.node(stage.last).out_shape.channels;

  if (stage.kind == StageKind::Branch) {
    const std::vector<Branch> branches =
        block_branches(graph, {stage.first, stage.last});
    PICO_CHECK(!branches.empty());
    for (const DeviceSlice& slice : stage.assignments) {
      if (slice.branches.empty()) continue;
      cost_out.compute =
          std::max(cost_out.compute,
                   device_compute_time(graph, cluster, stage, slice));
      Region in_region;
      Bytes bytes_out = 0.0;
      for (const int index : slice.branches) {
        const Branch& branch = branches[static_cast<std::size_t>(index)];
        in_region =
            in_region.union_bounds(branch_input_region(graph, branch));
        const Shape out = graph.node(branch.last).out_shape;
        bytes_out += cost::region_bytes(
            branch.channels, Region::full(out.height, out.width));
      }
      const Bytes bytes_in = cost::region_bytes(in_channels, in_region);
      cost_out.comm += network.transfer_time(bytes_in, slice.device) +
                       network.transfer_time(bytes_out, slice.device);
    }
    return cost_out;
  }

  for (const DeviceSlice& slice : stage.assignments) {
    if (slice.out_region.empty()) continue;
    cost_out.compute = std::max(
        cost_out.compute, device_compute_time(graph, cluster, stage, slice));
    const Region in_region = nn::segment_input_region(
        graph, stage.first, stage.last, slice.out_region);
    const Bytes bytes_in = cost::region_bytes(in_channels, in_region);
    const Bytes bytes_out = cost::region_bytes(out_channels, slice.out_region);
    cost_out.comm += network.transfer_time(bytes_in, slice.device) +
                     network.transfer_time(bytes_out, slice.device);
  }
  return cost_out;
}

PlanCost plan_cost(const nn::Graph& graph, const Cluster& cluster,
                   const NetworkModel& network, const Plan& plan) {
  PlanCost out;
  for (const Stage& stage : plan.stages) {
    out.stages.push_back(stage_cost(graph, cluster, network, stage));
    out.latency += out.stages.back().total();
    out.period = std::max(out.period, out.stages.back().total());
  }
  if (!plan.pipelined) out.period = out.latency;
  return out;
}

std::vector<DeviceWork> plan_device_work(const nn::Graph& graph,
                                         const Cluster& cluster,
                                         const Plan& plan) {
  std::map<DeviceId, DeviceWork> work;
  for (const Stage& stage : plan.stages) {
    if (stage.kind == StageKind::Branch) {
      // Branch parallelism duplicates no computation: each branch runs on
      // exactly one device over full maps.
      const std::vector<Branch> branches =
          block_branches(graph, {stage.first, stage.last});
      for (const DeviceSlice& slice : stage.assignments) {
        const Flops flops = branch_slice_flops(graph, branches, slice);
        DeviceWork& w = work[slice.device];
        w.device = slice.device;
        w.total += flops;
        w.busy += cluster.device(slice.device).compute_time(flops);
      }
      continue;
    }
    // Demand of every node in the segment, per device.
    std::vector<std::vector<Region>> demands;
    demands.reserve(stage.assignments.size());
    for (const DeviceSlice& slice : stage.assignments) {
      demands.push_back(nn::segment_demand(graph, stage.first, stage.last,
                                           slice.out_region));
    }
    for (int id = stage.first; id <= stage.last; ++id) {
      const std::size_t offset = static_cast<std::size_t>(id - stage.first);
      // Sum of demanded areas vs the full map: the excess is redundant.
      double demanded_area = 0.0;
      for (const auto& demand : demands) {
        demanded_area += static_cast<double>(demand[offset].area());
      }
      const Flops full = cost::node_flops_full(graph, id);
      const Shape shape = graph.node(id).out_shape;
      const double full_area =
          static_cast<double>(shape.height) * shape.width;
      // Redundancy fraction of each demanded element at this layer.
      const double redundant_fraction =
          demanded_area > 0.0
              ? std::max(0.0, demanded_area - full_area) / demanded_area
              : 0.0;
      (void)full;
      for (std::size_t k = 0; k < demands.size(); ++k) {
        const DeviceSlice& slice = stage.assignments[k];
        const Flops flops = cost::node_flops(graph, id, demands[k][offset]);
        DeviceWork& w = work[slice.device];
        w.device = slice.device;
        w.total += flops;
        w.redundant += flops * redundant_fraction;
        w.busy += cluster.device(slice.device).compute_time(flops);
      }
    }
  }
  std::vector<DeviceWork> out;
  out.reserve(work.size());
  for (auto& [id, w] : work) out.push_back(w);
  return out;
}

double plan_redundancy_ratio(const nn::Graph& graph, const Plan& plan) {
  Flops executed = 0.0;
  Flops essential = 0.0;
  for (const Stage& stage : plan.stages) {
    if (stage.kind == StageKind::Branch) {
      const std::vector<Branch> branches =
          block_branches(graph, {stage.first, stage.last});
      for (const DeviceSlice& slice : stage.assignments) {
        executed += branch_slice_flops(graph, branches, slice);
      }
    } else {
      for (const DeviceSlice& slice : stage.assignments) {
        executed += cost::segment_flops(graph, stage.first, stage.last,
                                        slice.out_region);
      }
    }
    essential += cost::segment_flops_full(graph, stage.first, stage.last);
  }
  PICO_CHECK(essential > 0.0);
  return (executed - essential) / essential;
}

}  // namespace pico::partition
