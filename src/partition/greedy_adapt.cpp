#include "partition/greedy_adapt.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "cost/flops.hpp"
#include "partition/branches.hpp"
#include "partition/schemes.hpp"

namespace pico::partition {

Plan greedy_adapt(const nn::Graph& graph, const Cluster& cluster,
                  const Plan& homogeneous) {
  PICO_CHECK(!homogeneous.stages.empty());
  const std::size_t stage_count = homogeneous.stages.size();

  // Θ' per stage: total FLOPs the homogeneous stage executes (halo included),
  // i.e. the sum over its slots of Eq. 4.
  struct Pending {
    Flops theta = 0.0;        ///< Θ' of the stage
    int slots_total = 0;      ///< |D'|
    int slots_remaining = 0;
    std::vector<DeviceId> chosen;
  };
  std::vector<Pending> pending(stage_count);
  int total_slots = 0;
  for (std::size_t s = 0; s < stage_count; ++s) {
    const Stage& stage = homogeneous.stages[s];
    Pending& p = pending[s];
    p.slots_total = p.slots_remaining = stage.device_count();
    total_slots += stage.device_count();
    if (stage.kind == StageKind::Branch) {
      // Branch stages have no halo: Θ' is one clean pass over the block.
      p.theta = cost::segment_flops_full(graph, stage.first, stage.last);
    } else {
      for (const DeviceSlice& slice : stage.assignments) {
        p.theta += cost::segment_flops(graph, stage.first, stage.last,
                                       slice.out_region);
      }
    }
  }
  PICO_CHECK_MSG(total_slots <= cluster.size(),
                 "plan needs " << total_slots << " devices, cluster has "
                               << cluster.size());

  // Fastest devices first; each goes to the stage with the highest remaining
  // per-slot requirement.
  const std::vector<DeviceId> order = cluster.ids_by_capacity_desc();
  int assigned = 0;
  for (DeviceId device : order) {
    if (assigned == total_slots) break;
    std::size_t best = stage_count;
    double best_avg = -1.0;
    for (std::size_t s = 0; s < stage_count; ++s) {
      const Pending& p = pending[s];
      if (p.slots_remaining == 0) continue;
      const double avg =
          p.theta * (static_cast<double>(p.slots_remaining) / p.slots_total) /
          p.slots_remaining;  // = Θ'_remaining / |D'_remaining|
      if (avg > best_avg) {
        best_avg = avg;
        best = s;
      }
    }
    PICO_CHECK(best < stage_count);
    pending[best].chosen.push_back(device);
    --pending[best].slots_remaining;
    ++assigned;
  }
  PICO_CHECK(assigned == total_slots);

  Plan plan;
  plan.scheme = homogeneous.scheme;
  plan.pipelined = homogeneous.pipelined;
  for (std::size_t s = 0; s < stage_count; ++s) {
    const Stage& old_stage = homogeneous.stages[s];
    if (old_stage.kind == StageKind::Branch) {
      // Re-balance branches over the real capacities (LPT).
      const std::vector<Branch> branches =
          block_branches(graph, {old_stage.first, old_stage.last});
      std::vector<double> capacities;
      capacities.reserve(pending[s].chosen.size());
      for (const DeviceId id : pending[s].chosen) {
        capacities.push_back(cluster.device(id).capacity);
      }
      const auto assignment = assign_branches(graph, branches, capacities);
      Stage stage;
      stage.first = old_stage.first;
      stage.last = old_stage.last;
      stage.kind = StageKind::Branch;
      for (std::size_t d = 0; d < pending[s].chosen.size(); ++d) {
        if (assignment[d].empty()) continue;
        DeviceSlice slice;
        slice.device = pending[s].chosen[d];
        slice.branches = assignment[d];
        stage.assignments.push_back(std::move(slice));
      }
      plan.stages.push_back(std::move(stage));
    } else {
      plan.stages.push_back(make_stage(graph, cluster, old_stage.first,
                                       old_stage.last, pending[s].chosen));
    }
  }
  return plan;
}

}  // namespace pico::partition
