#include "partition/schemes.hpp"

#include <limits>

#include "common/error.hpp"
#include "partition/plan_cost.hpp"
#include "partition/splitter.hpp"
#include "partition/units.hpp"

namespace pico::partition {

Stage make_stage(const nn::Graph& graph, const Cluster& cluster, int first,
                 int last, const std::vector<DeviceId>& devices) {
  PICO_CHECK(!devices.empty());
  const Shape out = graph.node(last).out_shape;
  std::vector<double> weights;
  weights.reserve(devices.size());
  for (DeviceId id : devices) weights.push_back(cluster.device(id).capacity);
  const std::vector<Region> regions =
      split_rows_proportional(out.height, out.width, weights);
  Stage stage;
  stage.first = first;
  stage.last = last;
  for (std::size_t k = 0; k < devices.size(); ++k) {
    stage.assignments.push_back({devices[k], regions[k], {}});
  }
  return stage;
}

Stage make_stage_grid(const nn::Graph& graph, int first, int last,
                      const std::vector<DeviceId>& devices) {
  PICO_CHECK(!devices.empty());
  const Shape out = graph.node(last).out_shape;
  // Most-square factorization rows x cols = device count.
  const int count = static_cast<int>(devices.size());
  int rows = 1;
  for (int r = 1; r * r <= count; ++r) {
    if (count % r == 0) rows = r;
  }
  const int cols = count / rows;
  // Put the larger factor along the larger map dimension.
  const int grid_rows = out.height >= out.width ? std::max(rows, cols)
                                                : std::min(rows, cols);
  const int grid_cols = count / grid_rows;
  const std::vector<Region> tiles =
      split_grid(out.height, out.width, grid_rows, grid_cols);
  Stage stage;
  stage.first = first;
  stage.last = last;
  for (std::size_t k = 0; k < devices.size(); ++k) {
    stage.assignments.push_back({devices[k], tiles[k], {}});
  }
  return stage;
}

namespace {

std::vector<DeviceId> all_devices(const Cluster& cluster) {
  std::vector<DeviceId> ids(static_cast<std::size_t>(cluster.size()));
  for (int i = 0; i < cluster.size(); ++i) ids[static_cast<std::size_t>(i)] = i;
  return ids;
}

Stage build_stage(const nn::Graph& graph, const Cluster& cluster, int first,
                  int last, const std::vector<DeviceId>& devices,
                  PartitionMode mode) {
  return mode == PartitionMode::Grid
             ? make_stage_grid(graph, first, last, devices)
             : make_stage(graph, cluster, first, last, devices);
}

}  // namespace

Plan lw_plan(const nn::Graph& graph, const Cluster& cluster,
             const SchemeOptions& options) {
  const std::vector<Unit> units = partition_units(graph);
  const std::vector<DeviceId> devices = all_devices(cluster);
  Plan plan;
  plan.scheme = "LW";
  plan.pipelined = false;
  for (const Unit& unit : units) {
    plan.stages.push_back(build_stage(graph, cluster, unit.first, unit.last,
                                      devices, options.partition_mode));
  }
  validate_plan(graph, cluster, plan);
  return plan;
}

Plan efl_plan(const nn::Graph& graph, const Cluster& cluster,
              const SchemeOptions& options) {
  const std::vector<Unit> units = partition_units(graph);
  const int unit_count = static_cast<int>(units.size());

  int fused = options.efl_fused_units;
  if (fused <= 0) {
    // DeepThings fuses the "first few" layers: fuse units until the feature
    // map has shrunk to 1/16 of the input extent (inclusive) — for YOLOv2
    // at 448 that is the first 16 layers down to 28x28, DeepThings' actual
    // configuration.
    const int threshold = graph.input_shape().height / 16;
    fused = 0;
    for (const Unit& unit : units) {
      ++fused;
      if (graph.node(unit.last).out_shape.height <= threshold) break;
    }
  }
  fused = std::min(fused, unit_count);

  Plan plan;
  plan.scheme = "EFL";
  plan.pipelined = false;
  const Unit head = unit_span(units, 0, fused - 1);
  plan.stages.push_back(build_stage(graph, cluster, head.first, head.last,
                                    all_devices(cluster),
                                    options.partition_mode));
  if (fused < unit_count) {
    const Unit tail = unit_span(units, fused, unit_count - 1);
    plan.stages.push_back(make_stage(graph, cluster, tail.first, tail.last,
                                     {cluster.fastest()}));
  }
  validate_plan(graph, cluster, plan);
  return plan;
}

Plan ofl_plan(const nn::Graph& graph, const Cluster& cluster,
              const NetworkModel& network, const SchemeOptions& options) {
  const std::vector<Unit> units = partition_units(graph);
  const int unit_count = static_cast<int>(units.size());
  const std::vector<DeviceId> devices = all_devices(cluster);

  // best[j] = min total latency for units 0..j-1; cut[j] = start unit of the
  // last fused block in the optimal solution for prefix j.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best(static_cast<std::size_t>(unit_count) + 1, kInf);
  std::vector<int> cut(static_cast<std::size_t>(unit_count) + 1, -1);
  best[0] = 0.0;
  for (int j = 1; j <= unit_count; ++j) {
    for (int i = 1; i <= j; ++i) {
      const Unit span = unit_span(units, i - 1, j - 1);
      const Stage stage = build_stage(graph, cluster, span.first, span.last,
                                      devices, options.partition_mode);
      const Seconds t =
          stage_cost(graph, cluster, network, stage).total();
      const double candidate = best[static_cast<std::size_t>(i - 1)] + t;
      if (candidate < best[static_cast<std::size_t>(j)]) {
        best[static_cast<std::size_t>(j)] = candidate;
        cut[static_cast<std::size_t>(j)] = i - 1;
      }
    }
  }

  // Reconstruct fused blocks.
  std::vector<std::pair<int, int>> blocks;  // [start unit, end unit]
  for (int j = unit_count; j > 0;) {
    const int i = cut[static_cast<std::size_t>(j)];
    blocks.emplace_back(i, j - 1);
    j = i;
  }
  Plan plan;
  plan.scheme = "OFL";
  plan.pipelined = false;
  for (auto it = blocks.rbegin(); it != blocks.rend(); ++it) {
    const Unit span = unit_span(units, it->first, it->second);
    plan.stages.push_back(build_stage(graph, cluster, span.first, span.last,
                                      devices, options.partition_mode));
  }
  validate_plan(graph, cluster, plan);
  return plan;
}

}  // namespace pico::partition
