// Plan cost evaluation — the paper's Eq. 5–11 — plus the static
// redundancy/work accounting behind Table I and Fig. 13.
#pragma once

#include <vector>

#include "cluster/cluster.hpp"
#include "nn/graph.hpp"
#include "partition/plan.hpp"

namespace pico::partition {

struct StageCost {
  Seconds compute = 0.0;  ///< Eq. 6: max over the stage's devices
  Seconds comm = 0.0;     ///< Eq. 8: sum of per-device in+out transfers
  Seconds total() const { return compute + comm; }  ///< Eq. 9
};

struct PlanCost {
  std::vector<StageCost> stages;
  Seconds period = 0.0;   ///< Eq. 10 (pipelined); == latency otherwise
  Seconds latency = 0.0;  ///< Eq. 11
};

/// Time device `slice.device` spends computing its share of `stage` (Eq. 5
/// applied to the Eq. 4 segment FLOPs, halo included).
Seconds device_compute_time(const nn::Graph& graph, const Cluster& cluster,
                            const Stage& stage, const DeviceSlice& slice);

StageCost stage_cost(const nn::Graph& graph, const Cluster& cluster,
                     const NetworkModel& network, const Stage& stage);

/// Evaluate the whole plan.  For pipelined plans period = max stage cost;
/// for sequential (one-stage-scheme) plans period = latency = sum.
PlanCost plan_cost(const nn::Graph& graph, const Cluster& cluster,
                   const NetworkModel& network, const Plan& plan);

/// Static per-device work accounting for one task flowing through the plan.
struct DeviceWork {
  DeviceId device = -1;
  Flops total = 0.0;      ///< FLOPs this device executes per task
  Flops redundant = 0.0;  ///< halo share of `total`
  Seconds busy = 0.0;     ///< compute time per task (Eq. 5)

  double redundancy_ratio() const {
    return total > 0.0 ? redundant / total : 0.0;
  }
};

/// Per-device work for every device that appears in the plan (one task).
/// Redundant FLOPs at each layer are the excess of the summed per-device
/// demand over the layer's full map, attributed to devices in proportion to
/// their demand (exact at stage aggregate level; see DESIGN.md §5).
std::vector<DeviceWork> plan_device_work(const nn::Graph& graph,
                                         const Cluster& cluster,
                                         const Plan& plan);

/// Aggregate redundancy of the plan: (sum of all device FLOPs − one full
/// model execution) / full model execution.
double plan_redundancy_ratio(const nn::Graph& graph, const Plan& plan);

}  // namespace pico::partition
