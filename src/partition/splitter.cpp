#include "partition/splitter.hpp"

#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace pico::partition {

namespace {

/// Recursive divide & conquer: assign rows [row_begin, row_end) to
/// weights[lo, hi), splitting at the proportional midpoint.
void divide(int row_begin, int row_end, int width,
            std::span<const double> weights, std::size_t lo, std::size_t hi,
            std::vector<Region>& out) {
  if (lo == hi) return;
  if (hi - lo == 1) {
    out[lo] = Region::rows(row_begin, row_end, width);
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  double left = 0.0, total = 0.0;
  for (std::size_t i = lo; i < hi; ++i) {
    if (i < mid) left += weights[i];
    total += weights[i];
  }
  const int rows = row_end - row_begin;
  int cut = row_begin;
  if (total > 0.0) {
    cut = row_begin +
          static_cast<int>(std::llround(rows * (left / total)));
  }
  if (cut < row_begin) cut = row_begin;
  if (cut > row_end) cut = row_end;
  divide(row_begin, cut, width, weights, lo, mid, out);
  divide(cut, row_end, width, weights, mid, hi, out);
}

}  // namespace

std::vector<Region> split_rows_proportional(int height, int width,
                                            std::span<const double> weights) {
  PICO_CHECK(height >= 1 && width >= 1 && !weights.empty());
  double total = 0.0;
  for (double w : weights) {
    PICO_CHECK_MSG(w >= 0.0, "negative split weight");
    total += w;
  }
  PICO_CHECK_MSG(total > 0.0, "all split weights are zero");
  std::vector<Region> out(weights.size());
  divide(0, height, width, weights, 0, weights.size(), out);
  return out;
}

std::vector<Region> split_rows_equal(int height, int width, int parts) {
  PICO_CHECK(parts >= 1);
  const std::vector<double> weights(static_cast<std::size_t>(parts), 1.0);
  return split_rows_proportional(height, width, weights);
}

std::vector<Region> split_grid(int height, int width, int grid_rows,
                               int grid_cols) {
  PICO_CHECK(grid_rows >= 1 && grid_cols >= 1);
  const std::vector<Region> row_strips =
      split_rows_equal(height, /*width=*/1, grid_rows);
  const std::vector<Region> col_strips =
      split_rows_equal(width, /*width=*/1, grid_cols);
  std::vector<Region> out;
  out.reserve(static_cast<std::size_t>(grid_rows) * grid_cols);
  for (const Region& r : row_strips) {
    for (const Region& c : col_strips) {
      out.push_back({r.row_begin, r.row_end, c.row_begin, c.row_end});
    }
  }
  return out;
}

}  // namespace pico::partition
