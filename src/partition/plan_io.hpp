// Plan persistence: a deployment computes its partition once (planning
// needs the whole model + cluster description) and ships the result to the
// coordinator, which reloads it at boot.  The format is a small
// line-oriented text format — diffable, greppable, versioned:
//
//   pico-plan v1
//   scheme PICO
//   pipelined 1
//   stage 1 8 spatial
//   device 0 region 0 5 0 16
//   device 1 region 5 10 0 16
//   stage 9 10 branch
//   device 4 branches 0 1
//   end
//
// parse_plan only checks structural well-formedness; validate the result
// against the actual graph/cluster with partition::validate_plan.
#pragma once

#include <string>

#include "partition/plan.hpp"

namespace pico::partition {

std::string serialize_plan(const Plan& plan);

/// Throws pico::Error with a line number on malformed input.
Plan parse_plan(const std::string& text);

void save_plan(const Plan& plan, const std::string& path);
Plan load_plan(const std::string& path);

}  // namespace pico::partition
