// Partition units — the "layers" the planners cut between.
//
// For chain CNNs every node is a unit.  For graph CNNs (§IV-B) a residual or
// inception block must stay whole: a stage boundary may only be placed at a
// node v where *no* edge jumps across v (every consumer of any node ≤ v,
// other than v itself, is also ≤ v).  Each maximal run between such cut
// points becomes one unit ("special layer" in the paper's wording).
#pragma once

#include <vector>

#include "nn/graph.hpp"

namespace pico::partition {

/// A contiguous node range [first, last] that planners treat as atomic.
struct Unit {
  int first = 0;
  int last = 0;
  friend bool operator==(const Unit&, const Unit&) = default;
};

/// Split graph nodes 1..size-1 into units at every legal cut point.
/// Requires every node to be spatially splittable (build zoo models without
/// classifier heads); throws otherwise.
std::vector<Unit> partition_units(const nn::Graph& graph);

/// Node range covered by units [ui, uj] (inclusive unit indices).
Unit unit_span(const std::vector<Unit>& units, int ui, int uj);

}  // namespace pico::partition
