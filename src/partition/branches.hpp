// Intra-block branch decomposition — the paper's stated future work.
//
// §IV-B treats a whole inception block as one "special layer", and §V-B
// observes that this costs speedup because "the optimal model partition is
// more likely to exist within blocks".  This module implements the missing
// piece: a multi-branch block (a sub-DAG fanning out from the block input
// and joining at a channel concat) can alternatively be parallelized by
// assigning whole *branches* to devices.  Each device receives the block
// input once, computes its branches over the full spatial map — no halo, no
// redundant FLOPs — and the results are stacked channel-wise.
//
// Spatial splits and branch splits trade differently: branch work is
// indivisible (a device gets at least one whole branch, so balance is
// limited by the largest branch), but it carries zero redundancy and only
// one input transfer per device.  The planner picks per stage whichever is
// cheaper (SchemeOptions::enable_branch_parallel).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "tensor/region.hpp"
#include "nn/graph.hpp"
#include "partition/units.hpp"

namespace pico::partition {

/// One branch of a block: the contiguous node range [first, last] computing
/// it, and where its output lands in the concat's channel stacking.
struct Branch {
  int first = 0;
  int last = 0;           ///< the branch's final node (a concat input)
  int channel_offset = 0; ///< first channel in the block output
  int channels = 0;       ///< channels this branch contributes

  friend bool operator==(const Branch&, const Branch&) = default;
};

/// Decompose `unit` into branches.  Returns an empty vector unless ALL of:
///  - the unit's last node is a Concat whose inputs are distinct nodes,
///  - the remaining nodes split into contiguous, disjoint ranges, one per
///    concat input, covering [unit.first, unit.last - 1],
///  - each range's only external input is the block input (unit.first - 1)
///    and nothing inside a range feeds outside it (except its last node
///    feeding the concat).
/// Inception blocks qualify; residual blocks (joined by Add, whose operands
/// share the input tensor) do not.
std::vector<Branch> block_branches(const nn::Graph& graph, const Unit& unit);

/// FLOPs to compute one branch over full maps (no redundancy by design).
Flops branch_flops(const nn::Graph& graph, const Branch& branch);

/// Input region of the block input that `branch` needs for its full output.
Region branch_input_region(const nn::Graph& graph, const Branch& branch);

/// Greedy LPT assignment: distribute branch indices over `capacities.size()`
/// devices so the slowest finish time is minimized heuristically — heaviest
/// branch first onto the device with the least (load / capacity).  Devices
/// may end up empty when there are fewer branches than devices.
std::vector<std::vector<int>> assign_branches(
    const nn::Graph& graph, const std::vector<Branch>& branches,
    const std::vector<double>& capacities);

}  // namespace pico::partition
