#include "partition/bfs.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "common/error.hpp"
#include "partition/plan_cost.hpp"
#include "partition/schemes.hpp"
#include "partition/units.hpp"

namespace pico::partition {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class Searcher {
 public:
  Searcher(const nn::Graph& graph, const Cluster& cluster,
           const NetworkModel& network, const BfsOptions& options)
      : graph_(graph),
        cluster_(cluster),
        network_(network),
        options_(options),
        units_(partition_units(graph)),
        unit_count_(static_cast<int>(units_.size())),
        start_(std::chrono::steady_clock::now()) {
    PICO_CHECK_MSG(cluster.size() <= 20, "BFS limited to 20 devices");
  }

  BfsResult run() {
    const unsigned all = (1u << cluster_.size()) - 1u;
    std::vector<std::pair<int, unsigned>> stack;  // (end unit, device subset)
    search(0, all, 0.0, 0.0, stack);
    BfsResult result;
    result.period = best_period_;
    result.latency = best_latency_;
    result.timed_out = timed_out_;
    result.states_explored = states_;
    result.search_seconds = elapsed();
    if (best_period_ < kInf) {
      result.plan.scheme = "BFS";
      result.plan.pipelined = true;
      int start_unit = 0;
      for (const auto& [end_unit, mask] : best_stack_) {
        const Unit span = unit_span(units_, start_unit, end_unit);
        result.plan.stages.push_back(make_stage(
            graph_, cluster_, span.first, span.last, subset_devices(mask)));
        start_unit = end_unit + 1;
      }
      validate_plan(graph_, cluster_, result.plan);
    }
    return result;
  }

 private:
  Seconds elapsed() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  std::vector<DeviceId> subset_devices(unsigned mask) const {
    std::vector<DeviceId> ids;
    for (int d = 0; d < cluster_.size(); ++d) {
      if (mask & (1u << d)) ids.push_back(d);
    }
    // Fastest first so the proportional splitter gives big strips to big
    // devices in a deterministic order.
    std::sort(ids.begin(), ids.end(), [&](DeviceId a, DeviceId b) {
      return cluster_.device(a).capacity > cluster_.device(b).capacity;
    });
    return ids;
  }

  Seconds stage_total(int first_unit, int last_unit, unsigned mask) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(first_unit) << 40) |
        (static_cast<std::uint64_t>(last_unit) << 32) | mask;
    if (const auto it = stage_cache_.find(key); it != stage_cache_.end()) {
      return it->second;
    }
    const Unit span = unit_span(units_, first_unit, last_unit);
    const Stage stage = make_stage(graph_, cluster_, span.first, span.last,
                                   subset_devices(mask));
    const Seconds t = stage_cost(graph_, cluster_, network_, stage).total();
    stage_cache_.emplace(key, t);
    return t;
  }

  /// Explore pipelines for units [next_unit, end] with `remaining` devices.
  /// `period_so_far` / `latency_so_far` describe the committed prefix.
  void search(int next_unit, unsigned remaining, Seconds period_so_far,
              Seconds latency_so_far,
              std::vector<std::pair<int, unsigned>>& stack) {
    if (timed_out_) return;
    if (next_unit == unit_count_) {
      if (period_so_far < best_period_ ||
          (period_so_far == best_period_ && latency_so_far < best_latency_)) {
        best_period_ = period_so_far;
        best_latency_ = latency_so_far;
        best_stack_ = stack;
      }
      return;
    }
    if (remaining == 0) return;
    if (options_.prune && period_so_far >= best_period_) return;

    // Memoization (ablation): a revisit of the same (unit, device-set) state
    // whose prefix is dominated — no better period AND no better latency
    // than a previously expanded prefix — cannot lead to a better solution,
    // because every completion available to it was available to the
    // dominating prefix.  Sound for any latency limit.
    if (options_.memoize) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(next_unit) << 32) | remaining;
      const auto it = memo_.find(key);
      if (it != memo_.end()) {
        const auto& [stored_period, stored_latency] = it->second;
        if (period_so_far >= stored_period &&
            latency_so_far >= stored_latency) {
          return;
        }
        // Replace only when the new prefix dominates the stored one, so the
        // stored pair always corresponds to one actually-expanded prefix.
        if (period_so_far <= stored_period &&
            latency_so_far <= stored_latency) {
          it->second = {period_so_far, latency_so_far};
        }
      } else {
        memo_.emplace(key, std::make_pair(period_so_far, latency_so_far));
      }
    }

    for (int end = next_unit; end < unit_count_; ++end) {
      // Enumerate non-empty subsets of the remaining devices.
      for (unsigned sub = remaining; sub != 0;
           sub = (sub - 1) & remaining) {
        if ((++states_ & 0xff) == 0 && elapsed() > options_.time_budget) {
          timed_out_ = true;
          return;
        }
        const Seconds t = stage_total(next_unit, end, sub);
        const Seconds latency = latency_so_far + t;
        if (latency > options_.latency_limit) continue;
        const Seconds period = std::max(period_so_far, t);
        if (options_.prune && period >= best_period_) continue;
        stack.emplace_back(end, sub);
        search(end + 1, remaining & ~sub, period, latency, stack);
        stack.pop_back();
        if (timed_out_) return;
      }
    }
  }

  const nn::Graph& graph_;
  const Cluster& cluster_;
  const NetworkModel& network_;
  const BfsOptions& options_;
  std::vector<Unit> units_;
  int unit_count_;
  std::chrono::steady_clock::time_point start_;

  Seconds best_period_ = kInf;
  Seconds best_latency_ = kInf;
  std::vector<std::pair<int, unsigned>> best_stack_;
  bool timed_out_ = false;
  long long states_ = 0;
  std::unordered_map<std::uint64_t, Seconds> stage_cache_;
  std::unordered_map<std::uint64_t, std::pair<Seconds, Seconds>> memo_;
};

}  // namespace

BfsResult bfs_optimal_plan(const nn::Graph& graph, const Cluster& cluster,
                           const NetworkModel& network,
                           const BfsOptions& options) {
  Searcher searcher(graph, cluster, network, options);
  return searcher.run();
}

}  // namespace pico::partition
