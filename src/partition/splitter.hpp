// Output-map splitters.
//
// Feature maps are partitioned into horizontal strips (the paper's §II-B
// partition; channels stay whole).  The proportional splitter is the
// "Divide-And-Conquer" of Algorithm 2: it recursively halves the device list
// and splits the row range at the weight-proportional point, so each
// device's strip size tracks its compute capacity.  Equal split is the
// special case of uniform weights used for the homogenized cluster.
//
// A 2-D grid splitter (DeepThings-style) is provided as an extension for the
// grid-vs-strip ablation.
#pragma once

#include <span>
#include <vector>

#include "tensor/region.hpp"

namespace pico::partition {

/// Split `height` rows into `parts` strips of near-equal height (difference
/// at most one row).  When height < parts the surplus strips are empty.
std::vector<Region> split_rows_equal(int height, int width, int parts);

/// Divide-and-conquer proportional split: strip heights approximate
/// height * weight_i / sum(weights).  Weights must be non-negative with a
/// positive sum.  Strips are returned in weight order, cover the map
/// exactly, and are pairwise disjoint; zero-weight entries get empty strips.
std::vector<Region> split_rows_proportional(int height, int width,
                                            std::span<const double> weights);

/// 2-D grid split into rows x cols tiles (extension; DeepThings grid mode).
std::vector<Region> split_grid(int height, int width, int grid_rows,
                               int grid_cols);

}  // namespace pico::partition
