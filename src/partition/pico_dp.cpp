#include "partition/pico_dp.hpp"

#include <limits>

#include "common/error.hpp"
#include "partition/branches.hpp"
#include "partition/greedy_adapt.hpp"
#include "partition/plan_cost.hpp"
#include "partition/splitter.hpp"
#include "partition/units.hpp"

namespace pico::partition {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Stage-cost table for the homogenized cluster: cost(i, j, q) of running
/// units i..j (0-based, inclusive) on q equal devices.  The default is an
/// equal spatial split (Eq. 9); with branch parallelism enabled, a
/// single-unit multi-branch stage may instead assign whole branches
/// (branches.hpp) when that is cheaper, and build_stage reproduces whichever
/// choice the cached cost reflects.
class StageCostTable {
 public:
  StageCostTable(const nn::Graph& graph, const Cluster& homogeneous,
                 const NetworkModel& network, const std::vector<Unit>& units,
                 bool enable_branch_parallel)
      : graph_(graph),
        cluster_(homogeneous),
        network_(network),
        units_(units),
        branch_parallel_(enable_branch_parallel),
        unit_count_(static_cast<int>(units.size())),
        cache_(static_cast<std::size_t>(unit_count_) * unit_count_ *
               cluster_.size()) {}

  Seconds cost(int i, int j, int q) { return entry(i, j, q).cost; }

  /// Best cost using at most p devices, and the best device count.
  std::pair<Seconds, int> best_cost(int i, int j, int p) {
    Seconds best = kInf;
    int best_q = 1;
    for (int q = 1; q <= p; ++q) {
      const Seconds c = cost(i, j, q);
      if (c < best) {
        best = c;
        best_q = q;
      }
    }
    return {best, best_q};
  }

  /// Materialize the stage matching the cached (i, j, q) decision.
  Stage build_stage(int i, int j, int q,
                    const std::vector<DeviceId>& devices) {
    PICO_CHECK(static_cast<int>(devices.size()) == q);
    const Unit span = unit_span(units_, i, j);
    if (entry(i, j, q).branch) {
      return make_branch_stage(span, devices);
    }
    return make_stage(graph_, cluster_, span.first, span.last, devices);
  }

 private:
  struct Entry {
    Seconds cost = -1.0;
    bool branch = false;
  };

  Entry& entry(int i, int j, int q) {
    auto& slot = cache_[index(i, j, q)];
    if (slot.cost >= 0.0) return slot;
    const Unit span = unit_span(units_, i, j);
    std::vector<DeviceId> devices;
    devices.reserve(static_cast<std::size_t>(q));
    for (int d = 0; d < q; ++d) devices.push_back(d);
    const Stage spatial =
        make_stage(graph_, cluster_, span.first, span.last, devices);
    slot.cost = stage_cost(graph_, cluster_, network_, spatial).total();
    if (branch_parallel_ && i == j && q > 1 &&
        !block_branches(graph_, span).empty()) {
      const Stage branch = make_branch_stage(span, devices);
      const Seconds branch_cost =
          stage_cost(graph_, cluster_, network_, branch).total();
      if (branch_cost < slot.cost) {
        slot.cost = branch_cost;
        slot.branch = true;
      }
    }
    return slot;
  }

  Stage make_branch_stage(const Unit& span,
                          const std::vector<DeviceId>& devices) {
    const std::vector<Branch> branches = block_branches(graph_, span);
    PICO_CHECK(!branches.empty());
    std::vector<double> capacities;
    capacities.reserve(devices.size());
    for (const DeviceId id : devices) {
      capacities.push_back(cluster_.device(id).capacity);
    }
    const auto assignment = assign_branches(graph_, branches, capacities);
    Stage stage;
    stage.first = span.first;
    stage.last = span.last;
    stage.kind = StageKind::Branch;
    for (std::size_t d = 0; d < devices.size(); ++d) {
      if (assignment[d].empty()) continue;  // more devices than branches
      DeviceSlice slice;
      slice.device = devices[d];
      slice.branches = assignment[d];
      stage.assignments.push_back(std::move(slice));
    }
    return stage;
  }

  std::size_t index(int i, int j, int q) const {
    return (static_cast<std::size_t>(i) * unit_count_ + j) *
               static_cast<std::size_t>(cluster_.size()) +
           static_cast<std::size_t>(q - 1);
  }

  const nn::Graph& graph_;
  const Cluster& cluster_;
  const NetworkModel& network_;
  const std::vector<Unit>& units_;
  bool branch_parallel_;
  int unit_count_;
  std::vector<Entry> cache_;
};

struct Cell {
  Seconds period = kInf;
  Seconds latency = kInf;
  // Reconstruction: the tail stage covers units [tail_start, j] with
  // tail_devices; the rest is the sub-pipeline for (tail_start - 1, p - p').
  int tail_start = 0;
  int tail_devices = 0;

  bool valid() const { return period < kInf; }
};

}  // namespace

Plan pico_homogeneous_plan(const nn::Graph& graph, const Cluster& cluster,
                           const NetworkModel& network,
                           const SchemeOptions& options) {
  const std::vector<Unit> units = partition_units(graph);
  const int unit_count = static_cast<int>(units.size());
  const int device_count = cluster.size();
  const Cluster homogeneous = cluster.homogenized();
  // Algorithm 1 reasons about anonymous mean-capacity devices, so it must
  // also see the nominal (uniform) link; per-device link scaling is an
  // identity-specific property the greedy adaptation stage deals with.
  const NetworkModel uniform_network = network.uniform();
  StageCostTable table(graph, homogeneous, uniform_network, units,
                       options.enable_branch_parallel);

  // dp[j][p]: best pipeline over units 0..j-1 using at most p devices.
  std::vector<std::vector<Cell>> dp(
      static_cast<std::size_t>(unit_count) + 1,
      std::vector<Cell>(static_cast<std::size_t>(device_count) + 1));

  for (int j = 1; j <= unit_count; ++j) {
    for (int p = 1; p <= device_count; ++p) {
      Cell& cell = dp[static_cast<std::size_t>(j)][static_cast<std::size_t>(p)];
      // Option A: single stage over units 0..j-1 with the best q <= p.
      {
        const auto [c, q] = table.best_cost(0, j - 1, p);
        if (c <= options.latency_limit) {
          cell = {c, c, 0, q};
        }
      }
      // Option B: sub-pipeline (units 0..s-1, p - p') + tail stage
      // (units s..j-1, p').  Both sides need at least one device.
      for (int s = 1; s < j; ++s) {
        for (int pp = 1; pp < p; ++pp) {
          const Cell& sub =
              dp[static_cast<std::size_t>(s)][static_cast<std::size_t>(p - pp)];
          if (!sub.valid()) continue;
          const Seconds tail = table.cost(s, j - 1, pp);
          const Seconds latency = sub.latency + tail;
          if (latency > options.latency_limit) continue;  // T_lim pruning
          const Seconds period = std::max(sub.period, tail);
          if (period < cell.period ||
              (period == cell.period && latency < cell.latency)) {
            cell = {period, latency, s, pp};
          }
        }
      }
    }
  }

  const Cell& root = dp[static_cast<std::size_t>(unit_count)]
                       [static_cast<std::size_t>(device_count)];
  PICO_CHECK_MSG(root.valid(),
                 "no pipeline satisfies the latency limit T_lim = "
                     << options.latency_limit);

  // Reconstruct stages back-to-front (BuildStrategy).
  struct RawStage {
    int first_unit, last_unit, devices;
  };
  std::vector<RawStage> raw;
  int j = unit_count, p = device_count;
  while (j > 0) {
    const Cell& cell = dp[static_cast<std::size_t>(j)][static_cast<std::size_t>(p)];
    PICO_CHECK(cell.valid());
    raw.push_back({cell.tail_start, j - 1, cell.tail_devices});
    const int next_j = cell.tail_start;
    if (next_j == 0) break;
    p -= cell.tail_devices;
    j = next_j;
  }

  Plan plan;
  plan.scheme = "PICO";
  plan.pipelined = true;
  int next_device = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    std::vector<DeviceId> devices;
    for (int d = 0; d < it->devices; ++d) devices.push_back(next_device++);
    plan.stages.push_back(
        table.build_stage(it->first_unit, it->last_unit, it->devices,
                          devices));
  }
  validate_plan(graph, homogeneous, plan);
  return plan;
}

Plan pico_plan(const nn::Graph& graph, const Cluster& cluster,
               const NetworkModel& network, const SchemeOptions& options) {
  const Plan homogeneous =
      pico_homogeneous_plan(graph, cluster, network, options);
  Plan plan = greedy_adapt(graph, cluster, homogeneous);
  validate_plan(graph, cluster, plan);
  return plan;
}

}  // namespace pico::partition
