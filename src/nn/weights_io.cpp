#include "nn/weights_io.hpp"

#include <cstring>
#include <fstream>

#include "common/error.hpp"

namespace pico::nn {

namespace {

constexpr std::uint32_t kMagic = 0x50494357;  // "PICW"
constexpr std::uint32_t kVersion = 1;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  const std::size_t offset = out.size();
  out.resize(offset + 4);
  std::memcpy(out.data() + offset, &value, 4);
}

void put_floats(std::vector<std::uint8_t>& out,
                const std::vector<float>& values) {
  const std::size_t offset = out.size();
  out.resize(offset + values.size() * 4);
  if (!values.empty()) {
    std::memcpy(out.data() + offset, values.data(), values.size() * 4);
  }
}

class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size)
      : data_(data), end_(data + size) {}

  std::uint32_t u32() {
    PICO_CHECK_MSG(data_ + 4 <= end_, "weights blob truncated");
    std::uint32_t value;
    std::memcpy(&value, data_, 4);
    data_ += 4;
    return value;
  }

  void floats(std::vector<float>& out, std::size_t count) {
    PICO_CHECK_MSG(data_ + count * 4 <= end_, "weights blob truncated");
    out.resize(count);
    if (count > 0) std::memcpy(out.data(), data_, count * 4);
    data_ += count * 4;
  }

  bool exhausted() const { return data_ == end_; }

 private:
  const std::uint8_t* data_;
  const std::uint8_t* end_;
};

// Graph gives no mutable node access by design; weight loading is the one
// sanctioned mutation, done through a const_cast kept local to this TU.
Node& mutable_node(Graph& graph, int id) {
  return const_cast<Node&>(graph.node(id));
}

}  // namespace

std::vector<std::uint8_t> serialize_weights(const Graph& graph) {
  PICO_CHECK_MSG(graph.finalized(), "serialize_weights requires finalize()");
  std::vector<std::uint8_t> out;
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_u32(out, static_cast<std::uint32_t>(graph.size()));
  for (const Node& node : graph.nodes()) {
    put_u32(out, static_cast<std::uint32_t>(node.id));
    put_u32(out, static_cast<std::uint32_t>(node.weights.size()));
    put_u32(out, static_cast<std::uint32_t>(node.bias.size()));
    put_u32(out, static_cast<std::uint32_t>(node.bn_scale.size()));
    put_u32(out, static_cast<std::uint32_t>(node.bn_shift.size()));
    put_floats(out, node.weights);
    put_floats(out, node.bias);
    put_floats(out, node.bn_scale);
    put_floats(out, node.bn_shift);
  }
  return out;
}

void deserialize_weights(Graph& graph, const std::uint8_t* data,
                         std::size_t size) {
  PICO_CHECK_MSG(graph.finalized(),
                 "deserialize_weights requires finalize()");
  Cursor cursor(data, size);
  PICO_CHECK_MSG(cursor.u32() == kMagic, "not a PICO weights blob");
  PICO_CHECK_MSG(cursor.u32() == kVersion, "unsupported weights version");
  const std::uint32_t node_count = cursor.u32();
  PICO_CHECK_MSG(node_count == static_cast<std::uint32_t>(graph.size()),
                 "weights blob has " << node_count << " nodes, graph has "
                                     << graph.size());
  for (int id = 0; id < graph.size(); ++id) {
    PICO_CHECK_MSG(cursor.u32() == static_cast<std::uint32_t>(id),
                   "weights blob node order mismatch at node " << id);
    const std::uint32_t weights = cursor.u32();
    const std::uint32_t bias = cursor.u32();
    const std::uint32_t bn_scale = cursor.u32();
    const std::uint32_t bn_shift = cursor.u32();
    Node& node = mutable_node(graph, id);
    PICO_CHECK_MSG(weights == node.weights.size() &&
                       bias == node.bias.size() &&
                       bn_scale == node.bn_scale.size() &&
                       bn_shift == node.bn_shift.size(),
                   "parameter shape mismatch at node "
                       << node.name << " — the blob was saved from a "
                          "structurally different model");
    cursor.floats(node.weights, weights);
    cursor.floats(node.bias, bias);
    cursor.floats(node.bn_scale, bn_scale);
    cursor.floats(node.bn_shift, bn_shift);
  }
  PICO_CHECK_MSG(cursor.exhausted(), "trailing bytes in weights blob");
}

void save_weights(const Graph& graph, const std::string& path) {
  const std::vector<std::uint8_t> blob = serialize_weights(graph);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  PICO_CHECK_MSG(file.good(), "cannot open for writing: " << path);
  file.write(reinterpret_cast<const char*>(blob.data()),
             static_cast<std::streamsize>(blob.size()));
  PICO_CHECK_MSG(file.good(), "write failed: " << path);
}

void load_weights(Graph& graph, const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  PICO_CHECK_MSG(file.good(), "cannot open weights file: " << path);
  const std::streamsize size = file.tellg();
  file.seekg(0);
  std::vector<std::uint8_t> blob(static_cast<std::size_t>(size));
  file.read(reinterpret_cast<char*>(blob.data()), size);
  PICO_CHECK_MSG(file.good(), "read failed: " << path);
  deserialize_weights(graph, blob.data(), blob.size());
}

}  // namespace pico::nn
