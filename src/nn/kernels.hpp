// Region-aware operator kernels.
//
// Every kernel computes `out_region` (in full-output-map coordinates) of one
// node's output, reading from input pieces that each carry their own
// full-map region.  Zero padding is applied only at true map borders — a
// piece in the middle of the map never sees padding, which is exactly the
// subtlety that makes naive "pad every tile" distributed convolution wrong.
//
// The single-device executor is the special case out_region == full map, so
// distributed and local inference share one arithmetic path and their
// results agree bit-for-bit.
//
// Intra-device parallelism: conv, pool and the elementwise kernels split
// `out_region` into horizontal strips executed on the shared ThreadPool
// (common/thread_pool.hpp).  Every output scalar is produced by exactly one
// strip with the same fixed accumulation order the serial loop uses, so
// results are bit-identical for every thread count — parallelism changes
// wall time, never arithmetic.
#pragma once

#include <span>

#include "nn/graph.hpp"
#include "tensor/slice.hpp"

namespace pico::nn {

/// Per-invocation execution knobs, threaded from the runtime worker /
/// executor down into the kernels.
struct ExecOptions {
  /// Upper bound on intra-device threads for one kernel invocation.
  /// 0 = process default (the PICO_THREADS environment variable when set,
  /// else hardware concurrency); 1 = fully serial.  Results are identical
  /// for every value.
  int threads = 0;
};

/// Compute `out_region` of node `node`'s output.  `inputs[k]` is the piece of
/// node.inputs[k]'s output map the caller holds; it must cover the region
/// input_region(graph, node.id, out_region, k).
/// Returns a tensor of shape {out_channels, out_region.height, width}.
Tensor compute_node(const Node& node, std::span<const Placed> inputs,
                    const Region& out_region,
                    const ExecOptions& options = {});

/// Convolution backends.  Both accumulate over (ic, ky, kx) in the same
/// order, so every output scalar sees the same float-addition sequence and
/// the results are identical (up to the sign of zero).  compute_node uses
/// Im2col (several times faster); Direct exists as the oracle the
/// equivalence tests compare against.
enum class ConvBackend { Direct, Im2col };
Tensor conv2d(const Node& node, const Placed& input, const Region& out_region,
              ConvBackend backend, const ExecOptions& options = {});

}  // namespace pico::nn
