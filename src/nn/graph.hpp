// CNN computation graph.
//
// A Graph is a DAG of Nodes built in topological order (a node may only
// consume already-added nodes), covering the operator set the paper's model
// zoo needs: convolution (square and non-square kernels — InceptionV3 uses
// 1x7/7x1), max/avg pooling, ReLU, inference-mode batch-norm, residual add,
// channel concat, fully-connected, and global average pooling.
//
// ReLU can be fused into conv/batchnorm via `fused_relu` so model layer
// counts match the paper's ("13 conv + 5 pool" for VGG16).
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace pico::nn {

enum class OpKind {
  Input,
  Conv,
  MaxPool,
  AvgPool,
  ReLU,
  BatchNorm,
  Add,
  Concat,
  FullyConnected,
  GlobalAvgPool,
};

const char* op_name(OpKind kind);

/// Spatial sliding-window geometry shared by conv and pooling.
struct Window {
  int kh = 1, kw = 1;  ///< kernel extent
  int sh = 1, sw = 1;  ///< stride
  int ph = 0, pw = 0;  ///< zero padding on each side

  static Window square(int k, int s, int p) { return {k, k, s, s, p, p}; }
};

struct Node {
  int id = -1;
  std::string name;
  OpKind kind = OpKind::Input;
  Window win;            ///< conv / pool only
  int out_channels = 0;  ///< conv / fc only
  /// Conv only: channels are split into `groups` independent blocks
  /// (MobileNet's depthwise conv is groups == in_channels).  Both channel
  /// counts must divide evenly.
  int groups = 1;
  bool fused_relu = false;
  std::vector<int> inputs;

  // Parameters (allocated by Graph::finalize, filled by randomize_weights).
  std::vector<float> weights;  ///< conv: oc*ic*kh*kw; fc: out*in
  std::vector<float> bias;     ///< conv / fc: oc
  std::vector<float> bn_scale, bn_shift;  ///< batchnorm: per channel

  // Shapes (filled by Graph::finalize).
  Shape in_shape;   ///< shape of inputs[0]'s output
  Shape out_shape;

  bool has_window() const {
    return kind == OpKind::Conv || kind == OpKind::MaxPool ||
           kind == OpKind::AvgPool;
  }
  /// True when the op's output can be computed region-by-region (spatially
  /// partitionable).  FC and global pooling need the whole input map.
  bool spatially_splittable() const {
    return kind != OpKind::FullyConnected && kind != OpKind::GlobalAvgPool;
  }
};

class Graph {
 public:
  /// Every graph starts with exactly one input node.
  int add_input(Shape shape);

  int add_conv(int input, int out_channels, int kernel, int stride,
               int padding, bool fused_relu = true, std::string name = "");
  /// Non-square variant (Inception's 1x7 / 7x1 kernels).
  int add_conv_window(int input, int out_channels, Window window,
                      bool fused_relu = true, std::string name = "",
                      int groups = 1);
  /// Grouped convolution: in/out channels split into `groups` independent
  /// blocks (weights per output channel only span its group's inputs).
  int add_conv_grouped(int input, int out_channels, int kernel, int stride,
                       int padding, int groups, bool fused_relu = true,
                       std::string name = "");
  /// Depthwise convolution (groups == channels, one filter per channel).
  int add_depthwise(int input, int kernel, int stride, int padding,
                    bool fused_relu = true, std::string name = "");
  int add_maxpool(int input, int kernel, int stride, int padding = 0,
                  std::string name = "");
  int add_avgpool(int input, int kernel, int stride, int padding = 0,
                  std::string name = "");
  int add_relu(int input, std::string name = "");
  int add_batchnorm(int input, bool fused_relu = false, std::string name = "");
  int add_add(int lhs, int rhs, bool fused_relu = false,
              std::string name = "");
  int add_concat(std::vector<int> inputs, std::string name = "");
  int add_fc(int input, int out_features, std::string name = "");
  int add_global_avgpool(int input, std::string name = "");

  /// Run shape inference and allocate parameter storage (zeros).
  /// Must be called once after the last add_*; graph is immutable after.
  void finalize();
  bool finalized() const { return finalized_; }

  /// Deterministically fill all weights with small uniform values.
  void randomize_weights(Rng& rng);

  int size() const { return static_cast<int>(nodes_.size()); }
  const Node& node(int id) const;
  const std::vector<Node>& nodes() const { return nodes_; }
  Shape input_shape() const;
  /// Final node's output shape.
  Shape output_shape() const;

  /// True when every node has exactly the previous node as input.
  bool is_chain() const;

  /// ids of node `id`'s consumers.
  std::vector<int> consumers(int id) const;

  /// Total parameter count (weights + biases + bn) — for reporting.
  long long parameter_count() const;

 private:
  int add_node(Node node);
  Node& mutable_node(int id);

  std::vector<Node> nodes_;
  bool finalized_ = false;
};

/// Output spatial size of a sliding window over `in` (floor semantics).
int window_out_extent(int in, int kernel, int stride, int padding);

}  // namespace pico::nn
