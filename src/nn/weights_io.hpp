// Binary weight serialization.
//
// A deployment needs to ship model parameters to edge devices and reload
// them across restarts; this module defines a simple versioned container:
//
//   u32 magic "PICW" | u32 version | u32 node_count
//   per node: u32 node_id | u32 sizes of {weights, bias, bn_scale, bn_shift}
//             | the four float arrays
//
// load_weights validates every size against the (already finalized) graph,
// so loading weights from a structurally different model fails loudly
// instead of silently mis-assigning parameters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/graph.hpp"

namespace pico::nn {

/// Serialize all parameters of `graph` (finalized) to a byte buffer.
std::vector<std::uint8_t> serialize_weights(const Graph& graph);

/// Load parameters from a buffer produced by serialize_weights into a graph
/// with identical structure.  Throws pico::Error on any mismatch.
void deserialize_weights(Graph& graph, const std::uint8_t* data,
                         std::size_t size);

/// File convenience wrappers.
void save_weights(const Graph& graph, const std::string& path);
void load_weights(Graph& graph, const std::string& path);

}  // namespace pico::nn
