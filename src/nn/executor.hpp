// Graph executors.
//
// `execute` runs a whole graph on one device — the reference result every
// distributed configuration is checked against.
//
// `execute_segment` runs a contiguous node range [first, last] on a region:
// it back-propagates demand (receptive fields) through the segment, checks
// that the provided input piece covers the external demand, then computes
// each node's needed region in topological order.  This is exactly the work
// one device performs inside a pipeline stage.
#pragma once

#include <vector>

#include "nn/graph.hpp"
#include "nn/kernels.hpp"
#include "tensor/slice.hpp"

namespace pico::nn {

/// Run the full graph; returns the final node's output map.  `options`
/// bounds the intra-device threads each kernel may use (see ExecOptions);
/// results are bit-identical for every thread count.
Tensor execute(const Graph& graph, const Tensor& input,
               const ExecOptions& options = {});

/// Run the full graph and also return every intermediate activation
/// (indexed by node id).  Used by tests and the stage-by-stage driver.
std::vector<Tensor> execute_all(const Graph& graph, const Tensor& input,
                                const ExecOptions& options = {});

/// Run nodes [first, last] producing `out_region` of node `last`'s output.
/// `input` is a piece of node (first-1)'s output map; it must cover
/// segment_input_region(graph, first, last, out_region).
Tensor execute_segment(const Graph& graph, int first, int last,
                       const Placed& input, const Region& out_region,
                       const ExecOptions& options = {});

}  // namespace pico::nn
