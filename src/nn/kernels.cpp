#include "nn/kernels.hpp"

#include <algorithm>
#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/trace.hpp"

namespace pico::nn {

namespace {

void check_piece_covers(const Node& node, const Placed& piece,
                        const Region& needed) {
  PICO_CHECK_MSG(piece.region.contains(needed),
                 "node " << node.name << ": input piece " << piece.region
                         << " does not cover needed region " << needed);
  PICO_CHECK(piece.tensor.shape().height == piece.region.height() &&
             piece.tensor.shape().width == piece.region.width());
}

int resolve_threads(const ExecOptions& options) {
  if (options.threads > 0) {
    return std::min(options.threads, ThreadPool::kMaxThreads);
  }
  return ThreadPool::global().parallelism();
}

/// Run `body` over `out_region` split into at most resolve_threads(options)
/// equal-height horizontal strips on the shared pool.  Each strip computes
/// disjoint output rows and every scalar keeps the serial accumulation
/// order, so the result is bit-identical for any strip count.  Each strip
/// is traced as one `span_name` span (category "kernel") when tracing is on.
void parallel_strips(const Region& out_region, const ExecOptions& options,
                     const char* span_name,
                     const std::function<void(const Region&)>& body) {
  const int rows = out_region.height();
  const int strips = std::max(1, std::min(resolve_threads(options), rows));
  if (strips <= 1) {
    obs::Span span(span_name, "kernel", obs::kernel_track(0));
    body(out_region);
    return;
  }
  const int base = rows / strips, extra = rows % strips;
  std::vector<Region> regions(static_cast<std::size_t>(strips));
  int row = out_region.row_begin;
  for (int s = 0; s < strips; ++s) {
    const int height = base + (s < extra ? 1 : 0);
    regions[static_cast<std::size_t>(s)] =
        Region{row, row + height, out_region.col_begin, out_region.col_end};
    row += height;
  }
  ThreadPool::global().parallel_for(strips, [&](int s) {
    obs::Span span(span_name, "kernel", obs::kernel_track(s));
    body(regions[static_cast<std::size_t>(s)]);
  });
}

Tensor conv(const Node& node, const Placed& in, const Region& out_region,
            const ExecOptions& options) {
  const Shape in_shape = node.in_shape;
  const int oc_count = node.out_channels;
  const int ic_count = in_shape.channels;
  const int kh = node.win.kh, kw = node.win.kw;
  const int sh = node.win.sh, sw = node.win.sw;
  const int ph = node.win.ph, pw = node.win.pw;
  const int icpg = ic_count / node.groups;  // input channels per group
  const int ocpg = oc_count / node.groups;

  Tensor out({oc_count, out_region.height(), out_region.width()});
  const long long kernel_plane = static_cast<long long>(kh) * kw;
  const long long kernel_volume = kernel_plane * icpg;

  parallel_strips(out_region, options, "conv_direct", [&](const Region& strip) {
    for (int oc = 0; oc < oc_count; ++oc) {
      const int ic_base = (oc / ocpg) * icpg;  // group's first input channel
      const float* w_oc = node.weights.data() + oc * kernel_volume;
      const float b = node.bias[static_cast<std::size_t>(oc)];
      for (int oy = strip.row_begin; oy < strip.row_end; ++oy) {
        const int iy0 = oy * sh - ph;
        float* out_row = &out.at(oc, oy - out_region.row_begin, 0);
        for (int ox = strip.col_begin; ox < strip.col_end; ++ox) {
          const int ix0 = ox * sw - pw;
          float acc = 0.0f;
          for (int local = 0; local < icpg; ++local) {
            const int ic = ic_base + local;
            const float* w_ic = w_oc + local * kernel_plane;
            for (int ky = 0; ky < kh; ++ky) {
              const int iy = iy0 + ky;
              if (iy < 0 || iy >= in_shape.height) continue;  // zero padding
              const float* in_row =
                  &in.tensor.at(ic, iy - in.region.row_begin, 0) -
                  in.region.col_begin;
              const float* w_row =
                  w_ic + static_cast<std::ptrdiff_t>(ky) * kw;
              for (int kx = 0; kx < kw; ++kx) {
                const int ix = ix0 + kx;
                if (ix < 0 || ix >= in_shape.width) continue;
                acc += w_row[kx] * in_row[ix];
              }
            }
          }
          acc += b;
          if (node.fused_relu && acc < 0.0f) acc = 0.0f;
          out_row[ox - out_region.col_begin] = acc;
        }
      }
    }
  });
  return out;
}

/// im2col + row-streaming matrix product.
///
/// Each parallel strip processes its rows in blocks small enough that the
/// unrolled input patch matrix (K = ic*kh*kw rows by N = block area columns)
/// stays cache/memory friendly.  For each block:
///   col[k][n] = input value (or 0 in padding) of tap k for output pixel n
///   out[oc][n] = sum_k w[oc][k] * col[k][n]   (k ascending -> same
///                accumulation order as the direct loop, so every output
///                scalar is identical up to the sign of zero)
///
/// The col buffer is sized once per strip for the widest block (no per-group
/// reallocation churn) and all patch-matrix extents are 64-bit: a single-row
/// region can legally be wide enough that kernel_volume * n overflows int.
Tensor conv_im2col(const Node& node, const Placed& in,
                   const Region& out_region, const ExecOptions& options) {
  const Shape in_shape = node.in_shape;
  const int oc_count = node.out_channels;
  const int ic_count = in_shape.channels;
  const int kh = node.win.kh, kw = node.win.kw;
  const int sh = node.win.sh, sw = node.win.sw;
  const int ph = node.win.ph, pw = node.win.pw;
  const int icpg = ic_count / node.groups;  // channels per group
  const int ocpg = oc_count / node.groups;
  const long long kernel_volume = static_cast<long long>(icpg) * kh * kw;

  Tensor out({oc_count, out_region.height(), out_region.width()});

  parallel_strips(out_region, options, "conv_im2col", [&](
                                                          const Region& strip) {
    // Block rows so the col matrix stays under ~8 MB.
    constexpr long long kColBudget = 2'000'000;  // floats
    const long long width = strip.width();
    const long long per_row = kernel_volume * width;
    const int block_rows =
        per_row > 0 ? static_cast<int>(std::max<long long>(
                          1, kColBudget / std::max<long long>(1, per_row)))
                    : strip.height();
    // One allocation per strip, sized for the widest block; later blocks
    // only zero-fill the prefix they use.
    const long long max_n =
        std::min<long long>(block_rows, strip.height()) * width;
    std::vector<float> col(static_cast<std::size_t>(kernel_volume * max_n));

    for (int block_begin = strip.row_begin; block_begin < strip.row_end;
         block_begin += block_rows) {
      const int block_end = std::min(block_begin + block_rows, strip.row_end);
      const long long n = (block_end - block_begin) * width;

      for (int group = 0; group < node.groups; ++group) {
        std::fill_n(col.begin(),
                    static_cast<std::size_t>(kernel_volume * n), 0.0f);

        // Fill the patch matrix, one (ic, ky, kx) tap row at a time; each
        // tap row is a strided copy of one input row segment, so the inner
        // loop is contiguous over output columns.
        long long k = 0;
        for (int local = 0; local < icpg; ++local) {
          const int ic = group * icpg + local;
          for (int ky = 0; ky < kh; ++ky) {
            for (int kx = 0; kx < kw; ++kx, ++k) {
              float* col_row = col.data() + k * n;
              long long column = 0;
              for (int oy = block_begin; oy < block_end; ++oy) {
                const int iy = oy * sh - ph + ky;
                if (iy < 0 || iy >= in_shape.height) {
                  column += width;
                  continue;
                }
                const float* in_row =
                    &in.tensor.at(ic, iy - in.region.row_begin, 0) -
                    in.region.col_begin;
                for (int ox = strip.col_begin; ox < strip.col_end;
                     ++ox, ++column) {
                  const int ix = ox * sw - pw + kx;
                  if (ix >= 0 && ix < in_shape.width) {
                    col_row[column] = in_row[ix];
                  }
                }
              }
            }
          }
        }

        // out_block[oc][n] += w[oc][k] * col[k][n], k ascending.
        for (int oc = group * ocpg; oc < (group + 1) * ocpg; ++oc) {
          const float* w = node.weights.data() + oc * kernel_volume;
          float* out_base =
              &out.at(oc, block_begin - out_region.row_begin, 0);
          for (long long i = 0; i < n; ++i) out_base[i] = 0.0f;
          for (long long kk = 0; kk < kernel_volume; ++kk) {
            const float wk = w[kk];
            const float* col_row = col.data() + kk * n;
            for (long long i = 0; i < n; ++i) {
              out_base[i] += wk * col_row[i];
            }
          }
          const float b = node.bias[static_cast<std::size_t>(oc)];
          if (node.fused_relu) {
            for (long long i = 0; i < n; ++i) {
              const float v = out_base[i] + b;
              out_base[i] = v > 0.0f ? v : 0.0f;
            }
          } else {
            for (long long i = 0; i < n; ++i) out_base[i] += b;
          }
        }
      }
    }
  });
  return out;
}

Tensor pool(const Node& node, const Placed& in, const Region& out_region,
            const ExecOptions& options) {
  const Shape in_shape = node.in_shape;
  const bool is_max = node.kind == OpKind::MaxPool;
  const int kh = node.win.kh, kw = node.win.kw;
  const int sh = node.win.sh, sw = node.win.sw;
  const int ph = node.win.ph, pw = node.win.pw;

  Tensor out({in_shape.channels, out_region.height(), out_region.width()});
  parallel_strips(out_region, options, "pool", [&](const Region& strip) {
    for (int c = 0; c < in_shape.channels; ++c) {
      for (int oy = strip.row_begin; oy < strip.row_end; ++oy) {
        const int iy0 = oy * sh - ph;
        for (int ox = strip.col_begin; ox < strip.col_end; ++ox) {
          const int ix0 = ox * sw - pw;
          float best = -std::numeric_limits<float>::infinity();
          float sum = 0.0f;
          int taps = 0;
          for (int ky = 0; ky < kh; ++ky) {
            const int iy = iy0 + ky;
            if (iy < 0 || iy >= in_shape.height) continue;
            for (int kx = 0; kx < kw; ++kx) {
              const int ix = ix0 + kx;
              if (ix < 0 || ix >= in_shape.width) continue;
              const float v = in.tensor.at(c, iy - in.region.row_begin,
                                           ix - in.region.col_begin);
              best = std::max(best, v);
              sum += v;
              ++taps;
            }
          }
          PICO_CHECK_MSG(taps > 0, "pool window entirely in padding");
          out.at(c, oy - out_region.row_begin, ox - out_region.col_begin) =
              is_max ? best : sum / static_cast<float>(taps);
        }
      }
    }
  });
  return out;
}

Tensor elementwise_relu(const Placed& in, const Region& out_region,
                        const ExecOptions& options) {
  Tensor out({in.tensor.shape().channels, out_region.height(),
              out_region.width()});
  parallel_strips(out_region, options, "relu", [&](const Region& strip) {
    for (int c = 0; c < out.shape().channels; ++c) {
      for (int y = strip.row_begin; y < strip.row_end; ++y) {
        for (int x = strip.col_begin; x < strip.col_end; ++x) {
          const float v = in.tensor.at(c, y - in.region.row_begin,
                                       x - in.region.col_begin);
          out.at(c, y - out_region.row_begin, x - out_region.col_begin) =
              v > 0.0f ? v : 0.0f;
        }
      }
    }
  });
  return out;
}

Tensor batchnorm(const Node& node, const Placed& in, const Region& out_region,
                 const ExecOptions& options) {
  Tensor out({node.in_shape.channels, out_region.height(),
              out_region.width()});
  parallel_strips(out_region, options, "batchnorm", [&](const Region& strip) {
    for (int c = 0; c < out.shape().channels; ++c) {
      const float scale = node.bn_scale[static_cast<std::size_t>(c)];
      const float shift = node.bn_shift[static_cast<std::size_t>(c)];
      for (int y = strip.row_begin; y < strip.row_end; ++y) {
        for (int x = strip.col_begin; x < strip.col_end; ++x) {
          float v = scale * in.tensor.at(c, y - in.region.row_begin,
                                         x - in.region.col_begin) +
                    shift;
          if (node.fused_relu && v < 0.0f) v = 0.0f;
          out.at(c, y - out_region.row_begin, x - out_region.col_begin) = v;
        }
      }
    }
  });
  return out;
}

Tensor add(const Node& node, const Placed& lhs, const Placed& rhs,
           const Region& out_region, const ExecOptions& options) {
  Tensor out({node.in_shape.channels, out_region.height(),
              out_region.width()});
  parallel_strips(out_region, options, "add", [&](const Region& strip) {
    for (int c = 0; c < out.shape().channels; ++c) {
      for (int y = strip.row_begin; y < strip.row_end; ++y) {
        for (int x = strip.col_begin; x < strip.col_end; ++x) {
          float v = lhs.tensor.at(c, y - lhs.region.row_begin,
                                  x - lhs.region.col_begin) +
                    rhs.tensor.at(c, y - rhs.region.row_begin,
                                  x - rhs.region.col_begin);
          if (node.fused_relu && v < 0.0f) v = 0.0f;
          out.at(c, y - out_region.row_begin, x - out_region.col_begin) = v;
        }
      }
    }
  });
  return out;
}

Tensor concat(const Node& node, std::span<const Placed> inputs,
              const Region& out_region) {
  Tensor out({node.out_shape.channels, out_region.height(),
              out_region.width()});
  int c_base = 0;
  for (const Placed& piece : inputs) {
    for (int c = 0; c < piece.tensor.shape().channels; ++c) {
      for (int y = out_region.row_begin; y < out_region.row_end; ++y) {
        for (int x = out_region.col_begin; x < out_region.col_end; ++x) {
          out.at(c_base + c, y - out_region.row_begin,
                 x - out_region.col_begin) =
              piece.tensor.at(c, y - piece.region.row_begin,
                              x - piece.region.col_begin);
        }
      }
    }
    c_base += piece.tensor.shape().channels;
  }
  return out;
}

Tensor fully_connected(const Node& node, const Placed& in) {
  PICO_CHECK_MSG(in.region == Region::full(node.in_shape.height,
                                           node.in_shape.width),
                 "fully-connected layers need the whole input map");
  Tensor out({node.out_channels, 1, 1});
  const long long in_elems = node.in_shape.elements();
  for (int o = 0; o < node.out_channels; ++o) {
    const float* w = node.weights.data() + o * in_elems;
    float acc = 0.0f;
    const std::span<const float> flat = in.tensor.data();
    for (long long i = 0; i < in_elems; ++i) acc += w[i] * flat[i];
    out.at(o, 0, 0) = acc + node.bias[static_cast<std::size_t>(o)];
  }
  return out;
}

Tensor global_avgpool(const Node& node, const Placed& in) {
  PICO_CHECK_MSG(in.region == Region::full(node.in_shape.height,
                                           node.in_shape.width),
                 "global average pooling needs the whole input map");
  Tensor out({node.in_shape.channels, 1, 1});
  const float denom =
      static_cast<float>(node.in_shape.height) * node.in_shape.width;
  for (int c = 0; c < node.in_shape.channels; ++c) {
    float acc = 0.0f;
    for (int y = 0; y < node.in_shape.height; ++y)
      for (int x = 0; x < node.in_shape.width; ++x)
        acc += in.tensor.at(c, y, x);
    out.at(c, 0, 0) = acc / denom;
  }
  return out;
}

}  // namespace

Tensor conv2d(const Node& node, const Placed& input, const Region& out_region,
              ConvBackend backend, const ExecOptions& options) {
  PICO_CHECK(node.kind == OpKind::Conv);
  return backend == ConvBackend::Direct
             ? conv(node, input, out_region, options)
             : conv_im2col(node, input, out_region, options);
}

Tensor compute_node(const Node& node, std::span<const Placed> inputs,
                    const Region& out_region, const ExecOptions& options) {
  PICO_CHECK_MSG(!out_region.empty(), "empty output region for node "
                                          << node.name);
  PICO_CHECK_MSG(inputs.size() == node.inputs.size(),
                 "node " << node.name << " expects " << node.inputs.size()
                         << " inputs, got " << inputs.size());
  PICO_CHECK(Region::full(node.out_shape.height, node.out_shape.width)
                 .contains(out_region));
  for (const Placed& piece : inputs) check_piece_covers(node, piece, {});

  switch (node.kind) {
    case OpKind::Conv:
      return conv_im2col(node, inputs[0], out_region, options);
    case OpKind::MaxPool:
    case OpKind::AvgPool:
      return pool(node, inputs[0], out_region, options);
    case OpKind::ReLU:
      return elementwise_relu(inputs[0], out_region, options);
    case OpKind::BatchNorm:
      return batchnorm(node, inputs[0], out_region, options);
    case OpKind::Add:
      return add(node, inputs[0], inputs[1], out_region, options);
    case OpKind::Concat:
      return concat(node, inputs, out_region);
    case OpKind::FullyConnected:
      return fully_connected(node, inputs[0]);
    case OpKind::GlobalAvgPool:
      return global_avgpool(node, inputs[0]);
    case OpKind::Input:
      break;
  }
  PICO_CHECK_MSG(false, "compute_node on input node");
  return {};
}

}  // namespace pico::nn
