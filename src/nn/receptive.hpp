// Receptive-field (region demand) propagation.
//
// Implements the paper's Eq. 3 generalized to padded, strided, non-square
// windows and to DAG segments: given the output region a device must
// produce, compute the input region it needs.  This is the quantity that
// determines both the halo (redundant computation) and the bytes on the wire
// (Eq. 7).
#pragma once

#include <vector>

#include "nn/graph.hpp"
#include "tensor/region.hpp"

namespace pico::nn {

/// Input region node `id` needs from its `input_index`-th producer in order
/// to compute `out_region` of its own output.  Regions are in full-map
/// coordinates and the result is clamped to the producer's extent (taps that
/// fall into zero padding need no real input).
Region input_region(const Graph& graph, int id, const Region& out_region,
                    int input_index = 0);

/// Demand of every node inside the contiguous segment [first, last] when the
/// segment must produce `out_region` of node `last`'s output.  Entry
/// `demand[id - first]` is the union of all regions node `id` must produce.
/// Nodes whose output is not needed get an empty region.
std::vector<Region> segment_demand(const Graph& graph, int first, int last,
                                   const Region& out_region);

/// Region of the segment's external input (output of node `first - 1`, or
/// the graph input when first == 1) required to produce `out_region` of node
/// `last`.  For multi-path blocks this is the union over all paths (§IV-B).
Region segment_input_region(const Graph& graph, int first, int last,
                            const Region& out_region);

/// True when every node in [first, last] is spatially splittable and all of
/// the segment's external dependencies come from node `first - 1` (or the
/// graph input).  Planners only form stages over valid segments.
bool is_valid_segment(const Graph& graph, int first, int last);

}  // namespace pico::nn
