#include "nn/graph.hpp"

#include <cmath>
#include <functional>

#include "common/error.hpp"

namespace pico::nn {

const char* op_name(OpKind kind) {
  switch (kind) {
    case OpKind::Input:          return "input";
    case OpKind::Conv:           return "conv";
    case OpKind::MaxPool:        return "maxpool";
    case OpKind::AvgPool:        return "avgpool";
    case OpKind::ReLU:           return "relu";
    case OpKind::BatchNorm:      return "batchnorm";
    case OpKind::Add:            return "add";
    case OpKind::Concat:         return "concat";
    case OpKind::FullyConnected: return "fc";
    case OpKind::GlobalAvgPool:  return "gavgpool";
  }
  return "?";
}

int window_out_extent(int in, int kernel, int stride, int padding) {
  PICO_CHECK(kernel >= 1 && stride >= 1 && padding >= 0);
  const int padded = in + 2 * padding;
  PICO_CHECK_MSG(padded >= kernel, "window larger than padded input: in="
                                       << in << " k=" << kernel
                                       << " p=" << padding);
  return (padded - kernel) / stride + 1;
}

int Graph::add_node(Node node) {
  PICO_CHECK_MSG(!finalized_, "cannot add nodes after finalize()");
  node.id = static_cast<int>(nodes_.size());
  for (int input : node.inputs) {
    PICO_CHECK_MSG(input >= 0 && input < node.id,
                   "node input " << input << " out of range for node "
                                 << node.id);
  }
  if (node.name.empty()) {
    node.name = std::string(op_name(node.kind)) + std::to_string(node.id);
  }
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

Node& Graph::mutable_node(int id) {
  PICO_CHECK(id >= 0 && id < size());
  return nodes_[static_cast<std::size_t>(id)];
}

const Node& Graph::node(int id) const {
  PICO_CHECK_MSG(id >= 0 && id < size(), "node id " << id << " out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

int Graph::add_input(Shape shape) {
  PICO_CHECK_MSG(nodes_.empty(), "input must be the first node");
  PICO_CHECK(shape.channels > 0 && shape.height > 0 && shape.width > 0);
  Node node;
  node.kind = OpKind::Input;
  node.out_shape = shape;
  return add_node(std::move(node));
}

int Graph::add_conv(int input, int out_channels, int kernel, int stride,
                    int padding, bool fused_relu, std::string name) {
  return add_conv_window(input, out_channels,
                         Window::square(kernel, stride, padding), fused_relu,
                         std::move(name));
}

int Graph::add_conv_window(int input, int out_channels, Window window,
                           bool fused_relu, std::string name, int groups) {
  PICO_CHECK(out_channels > 0);
  PICO_CHECK(groups >= 1 && out_channels % groups == 0);
  Node node;
  node.kind = OpKind::Conv;
  node.win = window;
  node.out_channels = out_channels;
  node.groups = groups;
  node.fused_relu = fused_relu;
  node.inputs = {input};
  node.name = std::move(name);
  return add_node(std::move(node));
}

int Graph::add_conv_grouped(int input, int out_channels, int kernel,
                            int stride, int padding, int groups,
                            bool fused_relu, std::string name) {
  return add_conv_window(input, out_channels,
                         Window::square(kernel, stride, padding), fused_relu,
                         std::move(name), groups);
}

int Graph::add_depthwise(int input, int kernel, int stride, int padding,
                         bool fused_relu, std::string name) {
  // Channel count before finalize(): walk producers (conv/fc fix it,
  // concat sums it, everything else passes it through).
  std::function<int(int)> channels_of = [&](int id) -> int {
    const Node& node = nodes_[static_cast<std::size_t>(id)];
    switch (node.kind) {
      case OpKind::Input:
        return node.out_shape.channels;
      case OpKind::Conv:
      case OpKind::FullyConnected:
        return node.out_channels;
      case OpKind::Concat: {
        int total = 0;
        for (const int producer : node.inputs) total += channels_of(producer);
        return total;
      }
      default:
        return channels_of(node.inputs[0]);
    }
  };
  const int channels = channels_of(input);
  PICO_CHECK(channels > 0);
  return add_conv_grouped(input, channels, kernel, stride, padding, channels,
                          fused_relu, std::move(name));
}

int Graph::add_maxpool(int input, int kernel, int stride, int padding,
                       std::string name) {
  Node node;
  node.kind = OpKind::MaxPool;
  node.win = Window::square(kernel, stride, padding);
  node.inputs = {input};
  node.name = std::move(name);
  return add_node(std::move(node));
}

int Graph::add_avgpool(int input, int kernel, int stride, int padding,
                       std::string name) {
  Node node;
  node.kind = OpKind::AvgPool;
  node.win = Window::square(kernel, stride, padding);
  node.inputs = {input};
  node.name = std::move(name);
  return add_node(std::move(node));
}

int Graph::add_relu(int input, std::string name) {
  Node node;
  node.kind = OpKind::ReLU;
  node.inputs = {input};
  node.name = std::move(name);
  return add_node(std::move(node));
}

int Graph::add_batchnorm(int input, bool fused_relu, std::string name) {
  Node node;
  node.kind = OpKind::BatchNorm;
  node.fused_relu = fused_relu;
  node.inputs = {input};
  node.name = std::move(name);
  return add_node(std::move(node));
}

int Graph::add_add(int lhs, int rhs, bool fused_relu, std::string name) {
  Node node;
  node.kind = OpKind::Add;
  node.fused_relu = fused_relu;
  node.inputs = {lhs, rhs};
  node.name = std::move(name);
  return add_node(std::move(node));
}

int Graph::add_concat(std::vector<int> inputs, std::string name) {
  PICO_CHECK(inputs.size() >= 2);
  Node node;
  node.kind = OpKind::Concat;
  node.inputs = std::move(inputs);
  node.name = std::move(name);
  return add_node(std::move(node));
}

int Graph::add_fc(int input, int out_features, std::string name) {
  PICO_CHECK(out_features > 0);
  Node node;
  node.kind = OpKind::FullyConnected;
  node.out_channels = out_features;
  node.inputs = {input};
  node.name = std::move(name);
  return add_node(std::move(node));
}

int Graph::add_global_avgpool(int input, std::string name) {
  Node node;
  node.kind = OpKind::GlobalAvgPool;
  node.inputs = {input};
  node.name = std::move(name);
  return add_node(std::move(node));
}

void Graph::finalize() {
  PICO_CHECK_MSG(!finalized_, "finalize() called twice");
  PICO_CHECK_MSG(!nodes_.empty() && nodes_[0].kind == OpKind::Input,
                 "graph needs an input node");
  for (Node& node : nodes_) {
    if (node.kind == OpKind::Input) continue;
    const Shape in = nodes_[static_cast<std::size_t>(node.inputs[0])]
                         .out_shape;
    node.in_shape = in;
    switch (node.kind) {
      case OpKind::Conv: {
        PICO_CHECK_MSG(in.channels % node.groups == 0 &&
                           node.out_channels % node.groups == 0,
                       "conv " << node.name << ": channels (" << in.channels
                               << " -> " << node.out_channels
                               << ") not divisible by groups "
                               << node.groups);
        const int oh = window_out_extent(in.height, node.win.kh, node.win.sh,
                                         node.win.ph);
        const int ow = window_out_extent(in.width, node.win.kw, node.win.sw,
                                         node.win.pw);
        node.out_shape = {node.out_channels, oh, ow};
        node.weights.assign(static_cast<std::size_t>(node.out_channels) *
                                (in.channels / node.groups) * node.win.kh *
                                node.win.kw,
                            0.0f);
        node.bias.assign(static_cast<std::size_t>(node.out_channels), 0.0f);
        break;
      }
      case OpKind::MaxPool:
      case OpKind::AvgPool: {
        const int oh = window_out_extent(in.height, node.win.kh, node.win.sh,
                                         node.win.ph);
        const int ow = window_out_extent(in.width, node.win.kw, node.win.sw,
                                         node.win.pw);
        node.out_shape = {in.channels, oh, ow};
        break;
      }
      case OpKind::ReLU:
        node.out_shape = in;
        break;
      case OpKind::BatchNorm:
        node.out_shape = in;
        node.bn_scale.assign(static_cast<std::size_t>(in.channels), 1.0f);
        node.bn_shift.assign(static_cast<std::size_t>(in.channels), 0.0f);
        break;
      case OpKind::Add: {
        const Shape rhs = nodes_[static_cast<std::size_t>(node.inputs[1])]
                              .out_shape;
        PICO_CHECK_MSG(in == rhs, "add shape mismatch at node "
                                      << node.name << ": " << in << " vs "
                                      << rhs);
        node.out_shape = in;
        break;
      }
      case OpKind::Concat: {
        int channels = 0;
        for (int input : node.inputs) {
          const Shape s = nodes_[static_cast<std::size_t>(input)].out_shape;
          PICO_CHECK_MSG(s.height == in.height && s.width == in.width,
                         "concat spatial mismatch at node " << node.name);
          channels += s.channels;
        }
        node.out_shape = {channels, in.height, in.width};
        break;
      }
      case OpKind::FullyConnected: {
        node.out_shape = {node.out_channels, 1, 1};
        node.weights.assign(static_cast<std::size_t>(node.out_channels) *
                                static_cast<std::size_t>(in.elements()),
                            0.0f);
        node.bias.assign(static_cast<std::size_t>(node.out_channels), 0.0f);
        break;
      }
      case OpKind::GlobalAvgPool:
        node.out_shape = {in.channels, 1, 1};
        break;
      case OpKind::Input:
        break;
    }
  }
  finalized_ = true;
}

void Graph::randomize_weights(Rng& rng) {
  PICO_CHECK_MSG(finalized_, "randomize_weights requires finalize()");
  for (Node& node : nodes_) {
    // Small symmetric range keeps activations bounded through deep nets.
    const float scale =
        node.kind == OpKind::Conv
            ? 1.0f / std::sqrt(static_cast<float>(
                  (node.in_shape.channels / node.groups) * node.win.kh *
                  node.win.kw))
            : 0.05f;
    for (auto& w : node.weights)
      w = static_cast<float>(rng.uniform(-scale, scale));
    for (auto& b : node.bias)
      b = static_cast<float>(rng.uniform(-0.01, 0.01));
    for (auto& s : node.bn_scale)
      s = static_cast<float>(rng.uniform(0.5, 1.5));
    for (auto& s : node.bn_shift)
      s = static_cast<float>(rng.uniform(-0.1, 0.1));
  }
}

Shape Graph::input_shape() const {
  PICO_CHECK(!nodes_.empty());
  return nodes_[0].out_shape;
}

Shape Graph::output_shape() const {
  PICO_CHECK_MSG(finalized_, "output_shape requires finalize()");
  return nodes_.back().out_shape;
}

bool Graph::is_chain() const {
  for (const Node& node : nodes_) {
    if (node.kind == OpKind::Input) continue;
    if (node.inputs.size() != 1 || node.inputs[0] != node.id - 1) return false;
  }
  return true;
}

std::vector<int> Graph::consumers(int id) const {
  std::vector<int> out;
  for (const Node& node : nodes_) {
    for (int input : node.inputs) {
      if (input == id) {
        out.push_back(node.id);
        break;
      }
    }
  }
  return out;
}

long long Graph::parameter_count() const {
  long long total = 0;
  for (const Node& node : nodes_) {
    total += static_cast<long long>(node.weights.size() + node.bias.size() +
                                    node.bn_scale.size() +
                                    node.bn_shift.size());
  }
  return total;
}

}  // namespace pico::nn
