#include "nn/executor.hpp"

#include "common/error.hpp"
#include "nn/receptive.hpp"

namespace pico::nn {

std::vector<Tensor> execute_all(const Graph& graph, const Tensor& input,
                                const ExecOptions& options) {
  PICO_CHECK_MSG(graph.finalized(), "graph not finalized");
  PICO_CHECK_MSG(input.shape() == graph.input_shape(),
                 "input shape " << input.shape() << " != graph input "
                                << graph.input_shape());
  std::vector<Tensor> values(static_cast<std::size_t>(graph.size()));
  values[0] = input;
  for (int id = 1; id < graph.size(); ++id) {
    const Node& node = graph.node(id);
    std::vector<Placed> pieces;
    pieces.reserve(node.inputs.size());
    for (int producer : node.inputs) {
      const Tensor& t = values[static_cast<std::size_t>(producer)];
      pieces.push_back(
          {Region::full(t.shape().height, t.shape().width), t});
    }
    values[static_cast<std::size_t>(id)] = compute_node(
        node, pieces,
        Region::full(node.out_shape.height, node.out_shape.width), options);
  }
  return values;
}

Tensor execute(const Graph& graph, const Tensor& input,
               const ExecOptions& options) {
  return execute_all(graph, input, options).back();
}

Tensor execute_segment(const Graph& graph, int first, int last,
                       const Placed& input, const Region& out_region,
                       const ExecOptions& options) {
  // Execution is more permissive than planning (is_valid_segment): any
  // contiguous range of splittable nodes whose external inputs all come
  // from ONE producer can run.  Planners guarantee that producer is
  // first-1; branch execution (partition/branches.hpp) uses the block
  // input, which can sit further back.
  PICO_CHECK(first >= 1 && first <= last && last < graph.size());
  int external_producer = -1;
  for (int id = first; id <= last; ++id) {
    const Node& node = graph.node(id);
    PICO_CHECK_MSG(node.spatially_splittable(),
                   "segment node " << node.name << " is not splittable");
    for (const int producer : node.inputs) {
      if (producer >= first) continue;
      if (external_producer < 0) external_producer = producer;
      PICO_CHECK_MSG(producer == external_producer,
                     "segment [" << first << ", " << last
                                 << "] has two external producers");
    }
  }
  const Region external_need =
      segment_input_region(graph, first, last, out_region);
  PICO_CHECK_MSG(input.region.contains(external_need),
                 "segment input piece " << input.region
                                        << " does not cover demand "
                                        << external_need);

  const std::vector<Region> demand =
      segment_demand(graph, first, last, out_region);

  std::vector<Placed> values(static_cast<std::size_t>(last - first + 1));
  for (int id = first; id <= last; ++id) {
    const Region need = demand[static_cast<std::size_t>(id - first)];
    if (need.empty()) continue;  // dead node w.r.t. this output region
    const Node& node = graph.node(id);
    std::vector<Placed> pieces;
    pieces.reserve(node.inputs.size());
    for (int producer : node.inputs) {
      if (producer < first) {
        pieces.push_back(input);
      } else {
        pieces.push_back(values[static_cast<std::size_t>(producer - first)]);
      }
    }
    values[static_cast<std::size_t>(id - first)] = {
        need, compute_node(node, pieces, need, options)};
  }
  return std::move(values.back().tensor);
}

}  // namespace pico::nn
