#include "nn/receptive.hpp"

#include "common/error.hpp"

namespace pico::nn {

namespace {

/// Rows/cols of the input needed by a window op for output extent [a, b):
/// first tap of output index a is a*s - p; last tap of b-1 is
/// (b-1)*s - p + k - 1.  Clamped to the real input extent — padding taps
/// need no data.
void window_demand(int a, int b, int stride, int kernel, int padding,
                   int in_extent, int& lo, int& hi) {
  lo = a * stride - padding;
  hi = (b - 1) * stride - padding + kernel;
  if (lo < 0) lo = 0;
  if (hi > in_extent) hi = in_extent;
}

}  // namespace

Region input_region(const Graph& graph, int id, const Region& out_region,
                    int input_index) {
  const Node& node = graph.node(id);
  PICO_CHECK(input_index >= 0 &&
             input_index < static_cast<int>(node.inputs.size()));
  if (out_region.empty()) return {};
  const Shape in = graph.node(node.inputs[static_cast<std::size_t>(
                                  input_index)])
                       .out_shape;
  switch (node.kind) {
    case OpKind::Conv:
    case OpKind::MaxPool:
    case OpKind::AvgPool: {
      Region r;
      window_demand(out_region.row_begin, out_region.row_end, node.win.sh,
                    node.win.kh, node.win.ph, in.height, r.row_begin,
                    r.row_end);
      window_demand(out_region.col_begin, out_region.col_end, node.win.sw,
                    node.win.kw, node.win.pw, in.width, r.col_begin,
                    r.col_end);
      return r;
    }
    case OpKind::ReLU:
    case OpKind::BatchNorm:
    case OpKind::Add:
    case OpKind::Concat:
      return out_region;
    case OpKind::FullyConnected:
    case OpKind::GlobalAvgPool:
      return Region::full(in.height, in.width);
    case OpKind::Input:
      break;
  }
  PICO_CHECK_MSG(false, "input_region on unsupported node kind");
  return {};
}

std::vector<Region> segment_demand(const Graph& graph, int first, int last,
                                   const Region& out_region) {
  PICO_CHECK(first >= 1 && first <= last && last < graph.size());
  std::vector<Region> demand(static_cast<std::size_t>(last - first + 1));
  demand.back() = out_region;
  for (int id = last; id >= first; --id) {
    const Region need = demand[static_cast<std::size_t>(id - first)];
    if (need.empty()) continue;
    const Node& node = graph.node(id);
    for (std::size_t k = 0; k < node.inputs.size(); ++k) {
      const int producer = node.inputs[k];
      if (producer < first) continue;  // external input, handled by caller
      const Region r = input_region(graph, id, need, static_cast<int>(k));
      auto& slot = demand[static_cast<std::size_t>(producer - first)];
      slot = slot.union_bounds(r);
    }
  }
  return demand;
}

Region segment_input_region(const Graph& graph, int first, int last,
                            const Region& out_region) {
  const std::vector<Region> demand =
      segment_demand(graph, first, last, out_region);
  Region external;
  for (int id = first; id <= last; ++id) {
    const Region need = demand[static_cast<std::size_t>(id - first)];
    if (need.empty()) continue;
    const Node& node = graph.node(id);
    for (std::size_t k = 0; k < node.inputs.size(); ++k) {
      if (node.inputs[k] >= first) continue;
      external = external.union_bounds(
          input_region(graph, id, need, static_cast<int>(k)));
    }
  }
  return external;
}

bool is_valid_segment(const Graph& graph, int first, int last) {
  if (first < 1 || first > last || last >= graph.size()) return false;
  const int external_producer = first - 1;
  for (int id = first; id <= last; ++id) {
    const Node& node = graph.node(id);
    if (!node.spatially_splittable()) return false;
    for (int input : node.inputs) {
      if (input < first && input != external_producer) return false;
    }
  }
  // The segment's result must be node `last`'s output: no node other than
  // `last` may feed consumers outside the segment.
  for (int id = first; id < last; ++id) {
    for (int consumer : graph.consumers(id)) {
      if (consumer > last) return false;
    }
  }
  return true;
}

}  // namespace pico::nn
