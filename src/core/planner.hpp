// Public facade — the API a downstream user calls.
//
//   auto graph   = pico::models::vgg16();
//   auto cluster = pico::Cluster::paper_heterogeneous();
//   pico::NetworkModel network;                       // 50 Mbps WiFi
//   auto plan = pico::plan(graph, cluster, network,
//                          pico::Scheme::Pico, {.latency_limit = 10.0});
//   auto cost = pico::evaluate(graph, cluster, network, plan);
//   pico::runtime::PipelineRuntime runtime(graph, plan);
//   Tensor result = runtime.infer(frame);
#pragma once

#include "adaptive/apico.hpp"
#include "cluster/cluster.hpp"
#include "nn/graph.hpp"
#include "partition/bfs.hpp"
#include "partition/plan.hpp"
#include "partition/plan_cost.hpp"
#include "partition/schemes.hpp"

namespace pico {

enum class Scheme {
  LayerWise,     ///< LW  — MoDNN-style per-layer parallelization
  EarlyFused,    ///< EFL — DeepThings-style early-layer fusion
  OptimalFused,  ///< OFL — AOFL-style DP-fused one-stage scheme
  Pico,          ///< PICO — DP pipeline + greedy heterogeneous adaptation
  BfsOptimal,    ///< exhaustive optimal pipeline (small instances only)
};

const char* scheme_name(Scheme scheme);

struct PlanOptions {
  Seconds latency_limit = std::numeric_limits<double>::infinity();
  int efl_fused_units = 0;      ///< 0 = auto
  Seconds bfs_time_budget = 60.0;
  /// Strips (paper) or DeepThings-style 2-D grid for LW/EFL/OFL stages.
  partition::PartitionMode partition_mode = partition::PartitionMode::Strips;
};

/// Build a plan with the chosen scheme.  Throws on infeasible constraints.
partition::Plan plan(const nn::Graph& graph, const Cluster& cluster,
                     const NetworkModel& network, Scheme scheme,
                     const PlanOptions& options = {});

/// Model-predicted period / latency / per-stage costs of a plan (Eq. 5–11).
partition::PlanCost evaluate(const nn::Graph& graph, const Cluster& cluster,
                             const NetworkModel& network,
                             const partition::Plan& plan);

}  // namespace pico
