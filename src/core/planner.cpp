#include "core/planner.hpp"

#include "common/error.hpp"
#include "partition/pico_dp.hpp"

namespace pico {

const char* scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::LayerWise:    return "LW";
    case Scheme::EarlyFused:   return "EFL";
    case Scheme::OptimalFused: return "OFL";
    case Scheme::Pico:         return "PICO";
    case Scheme::BfsOptimal:   return "BFS";
  }
  return "?";
}

partition::Plan plan(const nn::Graph& graph, const Cluster& cluster,
                     const NetworkModel& network, Scheme scheme,
                     const PlanOptions& options) {
  partition::SchemeOptions scheme_options;
  scheme_options.latency_limit = options.latency_limit;
  scheme_options.efl_fused_units = options.efl_fused_units;
  scheme_options.partition_mode = options.partition_mode;
  switch (scheme) {
    case Scheme::LayerWise:
      return partition::lw_plan(graph, cluster, scheme_options);
    case Scheme::EarlyFused:
      return partition::efl_plan(graph, cluster, scheme_options);
    case Scheme::OptimalFused:
      return partition::ofl_plan(graph, cluster, network, scheme_options);
    case Scheme::Pico:
      return partition::pico_plan(graph, cluster, network, scheme_options);
    case Scheme::BfsOptimal: {
      partition::BfsOptions bfs_options;
      bfs_options.latency_limit = options.latency_limit;
      bfs_options.time_budget = options.bfs_time_budget;
      const partition::BfsResult result =
          partition::bfs_optimal_plan(graph, cluster, network, bfs_options);
      PICO_CHECK_MSG(!result.plan.stages.empty(),
                     "BFS found no feasible plan (timed out: "
                         << result.timed_out << ")");
      return result.plan;
    }
  }
  PICO_CHECK_MSG(false, "unknown scheme");
  return {};
}

partition::PlanCost evaluate(const nn::Graph& graph, const Cluster& cluster,
                             const NetworkModel& network,
                             const partition::Plan& plan) {
  return partition::plan_cost(graph, cluster, network, plan);
}

}  // namespace pico
