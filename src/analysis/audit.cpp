#include "analysis/audit.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "cost/flops.hpp"
#include "nn/receptive.hpp"
#include "partition/branches.hpp"
#include "partition/plan_cost.hpp"

namespace pico::analysis {

namespace {

constexpr double kFlopsTolerance = 1e-6;  ///< relative, double accumulation

struct Auditor {
  const nn::Graph& graph;
  const Cluster& cluster;
  const NetworkModel& network;
  const partition::Plan& plan;
  const AuditOptions& options;
  AuditReport report;

  void add(Severity severity, const std::string& check, int stage,
           DeviceId device, const std::string& message) {
    report.findings.push_back({severity, check, stage, device, message});
    if (severity == Severity::Error && check == "structure") {
      report.structure_ok = false;
    }
  }

  template <typename... Parts>
  static std::string cat(Parts&&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    return os.str();
  }

  // -- structure ----------------------------------------------------------

  /// Re-derives the validate_plan invariants, reporting every violation.
  /// Returns per-stage "safe to analyse deeper" flags.
  std::vector<bool> check_structure() {
    std::vector<bool> stage_ok(plan.stages.size(), true);
    if (plan.stages.empty()) {
      add(Severity::Error, "structure", -1, -1, "plan has no stages");
      return stage_ok;
    }
    int expected_first = 1;
    std::set<DeviceId> across_stages;
    for (std::size_t s = 0; s < plan.stages.size(); ++s) {
      const partition::Stage& stage = plan.stages[s];
      const int index = static_cast<int>(s);
      if (stage.first != expected_first) {
        add(Severity::Error, "structure", index, -1,
            cat("stage starts at node ", stage.first, ", expected ",
                expected_first, " (ranges must be contiguous)"));
      }
      expected_first = stage.last + 1;
      if (stage.first < 1 || stage.last >= graph.size() ||
          stage.first > stage.last) {
        add(Severity::Error, "structure", index, -1,
            cat("stage range [", stage.first, ", ", stage.last,
                "] is outside the graph's nodes [1, ", graph.size() - 1,
                "]"));
        stage_ok[s] = false;
        continue;
      }
      if (!nn::is_valid_segment(graph, stage.first, stage.last)) {
        add(Severity::Error, "structure", index, -1,
            cat("range [", stage.first, ", ", stage.last,
                "] is not a valid fused segment"));
        stage_ok[s] = false;
      }
      if (stage.assignments.empty()) {
        add(Severity::Error, "structure", index, -1, "stage has no devices");
        stage_ok[s] = false;
        continue;
      }

      const Shape out = graph.node(stage.last).out_shape;
      std::vector<Region> regions;
      std::set<DeviceId> in_stage;
      std::set<int> branch_indices;
      bool devices_valid = true;
      for (const partition::DeviceSlice& slice : stage.assignments) {
        if (slice.device < 0 || slice.device >= cluster.size()) {
          add(Severity::Error, "structure", index, slice.device,
              cat("device id ", slice.device, " outside cluster of ",
                  cluster.size()));
          devices_valid = false;
          continue;
        }
        if (!in_stage.insert(slice.device).second) {
          add(Severity::Error, "structure", index, slice.device,
              cat("device ", slice.device, " appears twice in stage"));
        }
        if (plan.pipelined && !across_stages.insert(slice.device).second) {
          add(Severity::Error, "devices", index, slice.device,
              cat("device ", slice.device,
                  " appears in two pipelined stages (stages must use "
                  "disjoint device sets, Eq. 10)"));
        }
        if (stage.kind == partition::StageKind::Spatial) {
          if (!slice.branches.empty()) {
            add(Severity::Error, "structure", index, slice.device,
                "spatial stage carries branch assignments");
          }
          if (!slice.out_region.empty()) regions.push_back(slice.out_region);
        } else {
          for (const int branch : slice.branches) {
            if (!branch_indices.insert(branch).second) {
              add(Severity::Error, "structure", index, slice.device,
                  cat("branch ", branch, " assigned twice"));
            }
          }
        }
      }
      if (!devices_valid) stage_ok[s] = false;
      if (!stage_ok[s]) continue;

      if (stage.kind == partition::StageKind::Spatial) {
        if (!tiles_exactly(Region::full(out.height, out.width), regions)) {
          add(Severity::Error, "structure", index, -1,
              cat("device output regions do not tile the ", out.height, "x",
                  out.width, " map (overlap or gap)"));
          stage_ok[s] = false;
        }
      } else {
        const std::vector<partition::Branch> branches =
            partition::block_branches(graph, {stage.first, stage.last});
        if (branches.empty()) {
          add(Severity::Error, "structure", index, -1,
              cat("branch stage over a non-branch-decomposable segment [",
                  stage.first, ", ", stage.last, "]"));
          stage_ok[s] = false;
        } else if (branch_indices.empty() ||
                   *branch_indices.begin() < 0 ||
                   *branch_indices.rbegin() >=
                       static_cast<int>(branches.size()) ||
                   branch_indices.size() != branches.size()) {
          add(Severity::Error, "structure", index, -1,
              cat("branch assignments do not cover all ", branches.size(),
                  " branches exactly once"));
          stage_ok[s] = false;
        }
      }
    }
    if (expected_first != graph.size() && !plan.stages.empty()) {
      add(Severity::Error, "structure", -1, -1,
          cat("plan covers nodes up to ", expected_first - 1,
              " but graph has ", graph.size() - 1));
    }
    return stage_ok;
  }

  // -- halo ---------------------------------------------------------------

  /// True when every node of [first, last] consumes exactly the previous
  /// node — the case where Eq. 3 can be folded node-by-node and compared
  /// against segment_input_region as an independent derivation.
  bool segment_is_chain(int first, int last) const {
    for (int id = first; id <= last; ++id) {
      const std::vector<int>& inputs = graph.node(id).inputs;
      if (inputs.size() != 1 || inputs[0] != id - 1) return false;
    }
    return true;
  }

  void check_halo(int index, const partition::Stage& stage,
                  StageAudit& audit) {
    const Shape in = graph.node(stage.first).in_shape;
    const Region full_in = Region::full(in.height, in.width);
    int input_rows = 0;
    for (const partition::DeviceSlice& slice : stage.assignments) {
      if (slice.out_region.empty()) continue;
      const Region in_region = nn::segment_input_region(
          graph, stage.first, stage.last, slice.out_region);
      if (in_region.empty()) {
        add(Severity::Error, "halo", index, slice.device,
            cat("non-empty output region ", cat_region(slice.out_region),
                " demands an empty input region (Eq. 3 recursion broken)"));
        continue;
      }
      if (!full_in.contains(in_region)) {
        add(Severity::Error, "halo", index, slice.device,
            cat("input region ", cat_region(in_region),
                " escapes the producer map ", in.height, "x", in.width));
      }
      input_rows += in_region.height();

      const std::vector<Region> demand = nn::segment_demand(
          graph, stage.first, stage.last, slice.out_region);
      const Region& own = demand[static_cast<std::size_t>(stage.last -
                                                          stage.first)];
      if (own != slice.out_region) {
        add(Severity::Error, "halo", index, slice.device,
            cat("segment_demand does not fix the output region: asked for ",
                cat_region(slice.out_region), ", recursion yields ",
                cat_region(own)));
      }
      if (segment_is_chain(stage.first, stage.last)) {
        Region folded = slice.out_region;
        for (int id = stage.last; id >= stage.first; --id) {
          folded = nn::input_region(graph, id, folded);
        }
        if (folded != in_region) {
          add(Severity::Error, "halo", index, slice.device,
              cat("Eq. 3 derivations disagree on the input region: fold "
                  "gives ",
                  cat_region(folded), ", segment_input_region gives ",
                  cat_region(in_region)));
        }
      }
    }
    // Summed strip overlap beyond one full map: the rows transferred (and
    // recomputed upstream) more than once.
    audit.overlap_rows = std::max(0, input_rows - in.height);
  }

  static std::string cat_region(const Region& region) {
    return cat("[", region.row_begin, ",", region.row_end, ")x[",
               region.col_begin, ",", region.col_end, ")");
  }

  // -- flops --------------------------------------------------------------

  void check_stage_flops(int index, const partition::Stage& stage,
                         StageAudit& audit) {
    audit.essential =
        cost::segment_flops_full(graph, stage.first, stage.last);
    if (stage.kind == partition::StageKind::Branch) {
      const std::vector<partition::Branch> branches =
          partition::block_branches(graph, {stage.first, stage.last});
      for (const partition::DeviceSlice& slice : stage.assignments) {
        for (const int b : slice.branches) {
          audit.executed += partition::branch_flops(
              graph, branches[static_cast<std::size_t>(b)]);
        }
      }
    } else {
      for (const partition::DeviceSlice& slice : stage.assignments) {
        audit.executed += cost::segment_flops(graph, stage.first, stage.last,
                                              slice.out_region);
      }
    }
    if (audit.executed <
        audit.essential * (1.0 - kFlopsTolerance)) {
      add(Severity::Error, "flops", index, -1,
          cat("devices execute ", audit.executed, " FLOPs but the segment "
              "needs ",
              audit.essential,
              " (Eq. 2) — some output elements are never computed"));
    }
    if (audit.redundancy() > options.redundancy_warning) {
      add(Severity::Warning, "flops", index, -1,
          cat("stage recomputes ", static_cast<int>(audit.redundancy() * 100),
              "% of its essential FLOPs in halos — consider fewer devices "
              "or a shallower fusion"));
    }
  }

  void check_plan_flops() {
    const std::vector<partition::DeviceWork> work =
        partition::plan_device_work(graph, cluster, plan);
    Flops executed = 0.0;
    Flops redundant = 0.0;
    for (const partition::DeviceWork& w : work) {
      executed += w.total;
      redundant += w.redundant;
      if (w.redundant < -kFlopsTolerance * std::max(1.0, w.total) ||
          w.redundant > w.total * (1.0 + kFlopsTolerance)) {
        add(Severity::Error, "flops", -1, w.device,
            cat("device redundancy accounting out of range: redundant=",
                w.redundant, " of total=", w.total));
      }
    }
    Flops essential = 0.0;
    for (const partition::Stage& stage : plan.stages) {
      essential += cost::segment_flops_full(graph, stage.first, stage.last);
    }
    const double error = std::abs((executed - redundant) - essential);
    if (error > essential * kFlopsTolerance) {
      add(Severity::Error, "flops", -1, -1,
          cat("plan-wide identity broken: executed - redundant = ",
              executed - redundant, " but one full execution needs ",
              essential, " FLOPs"));
    }
    report.executed = executed;
    report.essential = essential;
  }

  // -- memory -------------------------------------------------------------

  Bytes node_parameter_bytes(int id) const {
    const nn::Node& node = graph.node(id);
    const auto count = node.weights.size() + node.bias.size() +
                       node.bn_scale.size() + node.bn_shift.size();
    return kBytesPerScalar * static_cast<double>(count);
  }

  /// Peak live activation bytes while a device executes `slice` of `stage`:
  /// the max over nodes of (demanded input + demanded output), since the
  /// executor materializes one node at a time on top of its inputs.
  Bytes slice_peak_activations(const partition::Stage& stage,
                               const partition::DeviceSlice& slice) const {
    if (stage.kind == partition::StageKind::Branch) {
      const std::vector<partition::Branch> branches =
          partition::block_branches(graph, {stage.first, stage.last});
      Bytes peak = 0.0;
      const int in_channels = graph.node(stage.first).in_shape.channels;
      for (const int b : slice.branches) {
        const partition::Branch& branch =
            branches[static_cast<std::size_t>(b)];
        const Region in_region =
            partition::branch_input_region(graph, branch);
        Bytes branch_peak = cost::region_bytes(in_channels, in_region);
        for (int id = branch.first; id <= branch.last; ++id) {
          const Shape out = graph.node(id).out_shape;
          branch_peak = std::max(
              branch_peak,
              cost::region_bytes(in_channels, in_region) +
                  cost::region_bytes(out.channels,
                                     Region::full(out.height, out.width)));
        }
        peak = std::max(peak, branch_peak);
      }
      return peak;
    }
    if (slice.out_region.empty()) return 0.0;
    const std::vector<Region> demand =
        nn::segment_demand(graph, stage.first, stage.last, slice.out_region);
    const Region in_region = nn::segment_input_region(
        graph, stage.first, stage.last, slice.out_region);
    const int in_channels = graph.node(stage.first).in_shape.channels;
    Bytes peak = cost::region_bytes(in_channels, in_region);
    for (int id = stage.first; id <= stage.last; ++id) {
      const nn::Node& node = graph.node(id);
      Bytes inputs = 0.0;
      for (const int producer : node.inputs) {
        if (producer >= stage.first) {
          const Region& r =
              demand[static_cast<std::size_t>(producer - stage.first)];
          inputs += cost::region_bytes(
              graph.node(producer).out_shape.channels, r);
        } else {
          inputs += cost::region_bytes(in_channels, in_region);
        }
      }
      const Region& out =
          demand[static_cast<std::size_t>(id - stage.first)];
      peak = std::max(peak,
                      inputs + cost::region_bytes(node.out_shape.channels,
                                                  out));
    }
    return peak;
  }

  void check_memory() {
    std::map<DeviceId, DeviceFootprint> footprints;
    for (const partition::Stage& stage : plan.stages) {
      std::vector<partition::Branch> branches;
      if (stage.kind == partition::StageKind::Branch) {
        branches =
            partition::block_branches(graph, {stage.first, stage.last});
      }
      for (const partition::DeviceSlice& slice : stage.assignments) {
        DeviceFootprint& fp = footprints[slice.device];
        fp.device = slice.device;
        // Parameters stay resident for every segment the device serves.
        if (stage.kind == partition::StageKind::Branch) {
          for (const int b : slice.branches) {
            const partition::Branch& branch =
                branches[static_cast<std::size_t>(b)];
            for (int id = branch.first; id <= branch.last; ++id) {
              fp.weights += node_parameter_bytes(id);
            }
          }
        } else if (!slice.out_region.empty()) {
          for (int id = stage.first; id <= stage.last; ++id) {
            fp.weights += node_parameter_bytes(id);
          }
        }
        fp.peak_activations = std::max(
            fp.peak_activations, slice_peak_activations(stage, slice));
      }
    }
    for (auto& [device, fp] : footprints) {
      report.footprints.push_back(fp);
      if (options.device_memory_limit > 0.0 &&
          fp.total() > options.device_memory_limit) {
        add(Severity::Error, "memory", -1, device,
            cat("device ", device, " needs ",
                static_cast<long long>(fp.total()), " bytes (weights ",
                static_cast<long long>(fp.weights), " + activations ",
                static_cast<long long>(fp.peak_activations),
                ") but the budget is ",
                static_cast<long long>(options.device_memory_limit)));
      }
    }
  }

  // -- devices / cost -----------------------------------------------------

  void check_devices() {
    for (std::size_t s = 0; s < plan.stages.size(); ++s) {
      const partition::Stage& stage = plan.stages[s];
      for (const partition::DeviceSlice& slice : stage.assignments) {
        const bool idle = stage.kind == partition::StageKind::Spatial
                              ? slice.out_region.empty()
                              : slice.branches.empty();
        if (idle) {
          add(Severity::Info, "devices", static_cast<int>(s), slice.device,
              cat("device ", slice.device,
                  " is assigned to the stage but receives no work"));
        }
      }
    }
  }

  void check_cost() {
    const partition::PlanCost cost =
        partition::plan_cost(graph, cluster, network, plan);
    report.period = cost.period;
    report.latency = cost.latency;
    for (std::size_t s = 0; s < report.stages.size(); ++s) {
      report.stages[s].compute = cost.stages[s].compute;
      report.stages[s].comm = cost.stages[s].comm;
    }
    if (report.latency > options.latency_limit) {
      add(Severity::Error, "cost", -1, -1,
          cat("plan latency ", report.latency, " s exceeds T_lim = ",
              options.latency_limit, " s"));
    }
  }

  // -- driver -------------------------------------------------------------

  AuditReport run() {
    PICO_CHECK_MSG(graph.finalized(), "audit requires a finalized graph");
    report.scheme = plan.scheme;
    report.pipelined = plan.pipelined;
    report.graph_nodes = graph.size();

    const std::vector<bool> stage_ok = check_structure();
    bool all_ok = report.structure_ok;
    for (std::size_t s = 0; s < plan.stages.size(); ++s) {
      const partition::Stage& stage = plan.stages[s];
      StageAudit audit;
      audit.index = static_cast<int>(s);
      audit.first = stage.first;
      audit.last = stage.last;
      audit.branch_parallel = stage.kind == partition::StageKind::Branch;
      for (const partition::DeviceSlice& slice : stage.assignments) {
        const bool active = stage.kind == partition::StageKind::Spatial
                                ? !slice.out_region.empty()
                                : !slice.branches.empty();
        audit.active_devices += active ? 1 : 0;
      }
      if (stage_ok[s]) {
        if (stage.kind == partition::StageKind::Spatial) {
          check_halo(audit.index, stage, audit);
        }
        check_stage_flops(audit.index, stage, audit);
      } else {
        all_ok = false;
      }
      report.stages.push_back(audit);
    }
    if (all_ok) {
      // Whole-plan accounting needs every stage analysable.
      check_plan_flops();
      check_memory();
      check_devices();
      check_cost();
    }
    return std::move(report);
  }
};

}  // namespace

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

int AuditReport::count(Severity severity) const {
  int n = 0;
  for (const Finding& finding : findings) n += finding.severity == severity;
  return n;
}

AuditReport audit_plan(const nn::Graph& graph, const Cluster& cluster,
                       const NetworkModel& network,
                       const partition::Plan& plan,
                       const AuditOptions& options) {
  Auditor auditor{graph, cluster, network, plan, options, {}};
  return auditor.run();
}

std::string to_text(const AuditReport& report) {
  std::ostringstream os;
  os << "audit: " << report.scheme << " plan, " << report.stages.size()
     << " stage(s), " << (report.pipelined ? "pipelined" : "sequential")
     << " — " << (report.ok() ? "PASS" : "FAIL") << " (" << report.errors()
     << " error(s), " << report.warnings() << " warning(s))\n";
  if (report.structure_ok) {
    os << "  period " << report.period << " s, latency " << report.latency
       << " s, redundancy "
       << (report.essential > 0.0
               ? (report.executed - report.essential) / report.essential
               : 0.0)
       << "\n";
  }
  for (const StageAudit& stage : report.stages) {
    os << "  stage " << stage.index << ": nodes [" << stage.first << ".."
       << stage.last << "] " << stage.active_devices << " device(s)"
       << (stage.branch_parallel ? " [branch-parallel]" : "") << " compute "
       << stage.compute << " s, comm " << stage.comm << " s, redundancy "
       << stage.redundancy() << ", overlap " << stage.overlap_rows
       << " row(s)\n";
  }
  for (const DeviceFootprint& fp : report.footprints) {
    os << "  device " << fp.device << ": weights "
       << static_cast<long long>(fp.weights) << " B, peak activations "
       << static_cast<long long>(fp.peak_activations) << " B\n";
  }
  for (const Finding& finding : report.findings) {
    os << "  [" << severity_name(finding.severity) << "] " << finding.check;
    if (finding.stage >= 0) os << " stage " << finding.stage;
    if (finding.device >= 0) os << " device " << finding.device;
    os << ": " << finding.message << "\n";
  }
  return os.str();
}

namespace {

void json_escape(std::ostringstream& os, const std::string& text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
             << "0123456789abcdef"[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string to_json(const AuditReport& report) {
  std::ostringstream os;
  os << "{";
  os << "\"scheme\":";
  json_escape(os, report.scheme);
  os << ",\"pipelined\":" << (report.pipelined ? "true" : "false")
     << ",\"ok\":" << (report.ok() ? "true" : "false")
     << ",\"errors\":" << report.errors()
     << ",\"warnings\":" << report.warnings()
     << ",\"structure_ok\":" << (report.structure_ok ? "true" : "false")
     << ",\"essential_flops\":" << report.essential
     << ",\"executed_flops\":" << report.executed
     << ",\"period_s\":" << report.period
     << ",\"latency_s\":" << report.latency;
  os << ",\"stages\":[";
  for (std::size_t s = 0; s < report.stages.size(); ++s) {
    const StageAudit& stage = report.stages[s];
    os << (s ? "," : "") << "{\"index\":" << stage.index
       << ",\"first\":" << stage.first << ",\"last\":" << stage.last
       << ",\"branch_parallel\":" << (stage.branch_parallel ? "true" : "false")
       << ",\"active_devices\":" << stage.active_devices
       << ",\"essential_flops\":" << stage.essential
       << ",\"executed_flops\":" << stage.executed
       << ",\"redundancy\":" << stage.redundancy()
       << ",\"overlap_rows\":" << stage.overlap_rows
       << ",\"compute_s\":" << stage.compute
       << ",\"comm_s\":" << stage.comm << "}";
  }
  os << "],\"device_footprints\":[";
  for (std::size_t d = 0; d < report.footprints.size(); ++d) {
    const DeviceFootprint& fp = report.footprints[d];
    os << (d ? "," : "") << "{\"device\":" << fp.device
       << ",\"weights_bytes\":" << fp.weights
       << ",\"peak_activation_bytes\":" << fp.peak_activations << "}";
  }
  os << "],\"findings\":[";
  for (std::size_t f = 0; f < report.findings.size(); ++f) {
    const Finding& finding = report.findings[f];
    os << (f ? "," : "") << "{\"severity\":\""
       << severity_name(finding.severity) << "\",\"check\":";
    json_escape(os, finding.check);
    os << ",\"stage\":" << finding.stage
       << ",\"device\":" << finding.device << ",\"message\":";
    json_escape(os, finding.message);
    os << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace pico::analysis
