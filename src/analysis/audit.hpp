// Static plan auditor — deeper invariants than partition::validate_plan.
//
// validate_plan answers "is this plan structurally well-formed" and throws
// at the first violation.  The auditor answers "will this plan compute the
// right thing within its resource envelope" and reports *everything* it
// finds, machine-readably, so CI can diff reports across commits:
//
//  - structure: the validate_plan invariants, re-derived independently and
//    reported per violation instead of first-failure;
//  - halo: per-slice input regions re-derived from the receptive-field
//    recursion (Eq. 3) and cross-checked two ways (segment_input_region vs
//    a node-by-node fold on chain segments), plus containment in the
//    producer map and output-region fixpoint of segment_demand;
//  - flops: redundant-work accounting vs Eq. 2 — executed >= essential per
//    stage and the plan-wide identity executed - redundant == essential;
//  - memory: a static per-device footprint bound (resident weights + peak
//    live activations) checked against an optional per-device budget;
//  - devices: pipelined-stage device-disjointness and idle-device warnings;
//  - cost: Eq. 9-11 summary and the optional T_lim latency bound.
//
// The auditor never throws on a bad plan — a broken plan is a *finding*,
// not an exception — so tooling can audit untrusted plan files directly.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "nn/graph.hpp"
#include "partition/plan.hpp"

namespace pico::analysis {

enum class Severity { Info, Warning, Error };
const char* severity_name(Severity severity);

struct Finding {
  Severity severity = Severity::Error;
  /// Check family: "structure", "halo", "flops", "memory", "devices", "cost".
  std::string check;
  int stage = -1;        ///< stage index; -1 = plan-wide
  DeviceId device = -1;  ///< -1 = not device-specific
  std::string message;
};

/// Static memory bound for one device: parameters it must keep resident
/// plus the worst-case simultaneously-live activation set of its slices.
struct DeviceFootprint {
  DeviceId device = -1;
  Bytes weights = 0.0;
  Bytes peak_activations = 0.0;
  Bytes total() const { return weights + peak_activations; }
};

struct StageAudit {
  int index = -1;
  int first = 0;
  int last = 0;
  bool branch_parallel = false;
  int active_devices = 0;
  Flops essential = 0.0;  ///< Eq. 2 over full maps, halo-free
  Flops executed = 0.0;   ///< sum of per-device work, halo included
  int overlap_rows = 0;   ///< summed input-strip overlap beyond the full map
  Seconds compute = 0.0;  ///< Eq. 6
  Seconds comm = 0.0;     ///< Eq. 8

  double redundancy() const {
    return essential > 0.0 ? (executed - essential) / essential : 0.0;
  }
};

struct AuditOptions {
  /// Per-device memory budget in bytes; 0 disables the check.  (A Pi 4B
  /// worker process realistically gets ~512 MB of the 2 GB board.)
  Bytes device_memory_limit = 0.0;
  /// Pipeline latency bound T_lim; infinite disables the check.
  Seconds latency_limit = std::numeric_limits<double>::infinity();
  /// Stage redundancy ratio above which a Warning is emitted.
  double redundancy_warning = 0.75;
};

struct AuditReport {
  std::string scheme;
  bool pipelined = false;
  int graph_nodes = 0;
  bool structure_ok = true;  ///< deeper checks are gated on this
  std::vector<StageAudit> stages;
  std::vector<DeviceFootprint> footprints;
  std::vector<Finding> findings;
  Flops essential = 0.0;
  Flops executed = 0.0;
  Seconds period = 0.0;   ///< Eq. 10
  Seconds latency = 0.0;  ///< Eq. 11

  int count(Severity severity) const;
  int errors() const { return count(Severity::Error); }
  int warnings() const { return count(Severity::Warning); }
  /// A plan passes the audit iff it produced no Error findings.
  bool ok() const { return errors() == 0; }
};

/// Audit `plan` against `graph` + `cluster` + `network`.  Never throws on a
/// bad plan; precondition violations of the *inputs* (unfinalized graph)
/// still throw InvariantError.
AuditReport audit_plan(const nn::Graph& graph, const Cluster& cluster,
                       const NetworkModel& network,
                       const partition::Plan& plan,
                       const AuditOptions& options = {});

/// Multi-line human-readable report.
std::string to_text(const AuditReport& report);

/// Machine-readable JSON document (stable key order, suitable for diffing).
std::string to_json(const AuditReport& report);

}  // namespace pico::analysis
