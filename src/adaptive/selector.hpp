// Scheme selection (§IV-C): given candidate plans and the estimated arrival
// rate λ, predict each plan's average inference latency with Theorem 2 and
// pick the argmin.  Unstable candidates (λp ≥ 1) predict +inf; when every
// candidate is unstable the queue grows regardless, so the plan with the
// smallest period (highest throughput) is chosen.
#pragma once

#include <span>
#include <vector>

#include "cluster/cluster.hpp"
#include "nn/graph.hpp"
#include "partition/plan.hpp"

namespace pico::adaptive {

struct Candidate {
  partition::Plan plan;
  Seconds period = 0.0;   ///< Eq. 10
  Seconds latency = 0.0;  ///< Eq. 11
};

/// Evaluate a plan's period/latency under the cost model.
Candidate make_candidate(const nn::Graph& graph, const Cluster& cluster,
                         const NetworkModel& network,
                         const partition::Plan& plan);

/// Predicted average inference latency of one candidate at rate λ
/// (exact M/D/1 form Wq + t; see sim/queueing.hpp for Theorem 2 vs exact).
Seconds predicted_latency(const Candidate& candidate, double lambda);

/// Index of the best candidate at rate λ (see header comment for ties).
std::size_t select_scheme(std::span<const Candidate> candidates,
                          double lambda);

}  // namespace pico::adaptive
