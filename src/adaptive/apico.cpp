#include "adaptive/apico.hpp"

#include "common/error.hpp"
#include "partition/pico_dp.hpp"
#include "partition/schemes.hpp"

namespace pico::adaptive {

ApicoController::ApicoController(std::vector<Candidate> candidates,
                                 ApicoOptions options)
    : candidates_(std::move(candidates)),
      options_(options),
      estimator_(options.beta, options.initial_rate) {
  PICO_CHECK(!candidates_.empty());
}

ApicoController ApicoController::make_default(const nn::Graph& graph,
                                              const Cluster& cluster,
                                              const NetworkModel& network,
                                              ApicoOptions options) {
  std::vector<Candidate> candidates;
  candidates.push_back(make_candidate(
      graph, cluster, network, partition::ofl_plan(graph, cluster, network)));
  candidates.push_back(make_candidate(
      graph, cluster, network, partition::pico_plan(graph, cluster, network)));
  return ApicoController(std::move(candidates), options);
}

const Candidate& ApicoController::decide(int window_arrivals) {
  PICO_CHECK(window_arrivals >= 0);
  return decide_rate(static_cast<double>(window_arrivals) / options_.window);
}

const Candidate& ApicoController::decide_rate(double measured_rate) {
  estimator_.observe(measured_rate);
  current_ = select_scheme(candidates_, estimator_.rate());
  return candidates_[current_];
}

void ApicoController::attach(sim::ClusterSimulator& simulator) {
  simulator.set_plan(candidates_[current_].plan);
  simulator.set_controller(
      options_.window,
      [this](sim::ClusterSimulator& sim, Seconds now, int window_arrivals) {
        const Candidate& choice = decide(window_arrivals);
        decisions_.emplace_back(now, choice.plan.scheme);
        sim.set_plan(choice.plan);
      });
}

}  // namespace pico::adaptive
