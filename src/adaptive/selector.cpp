#include "adaptive/selector.hpp"

#include <limits>

#include "common/error.hpp"
#include "partition/plan_cost.hpp"
#include "sim/queueing.hpp"

namespace pico::adaptive {

Candidate make_candidate(const nn::Graph& graph, const Cluster& cluster,
                         const NetworkModel& network,
                         const partition::Plan& plan) {
  const partition::PlanCost cost =
      partition::plan_cost(graph, cluster, network, plan);
  return {plan, cost.period, cost.latency};
}

Seconds predicted_latency(const Candidate& candidate, double lambda) {
  // Exact M/D/1 prediction (Wq + t).  Theorem 2's expression adds one extra
  // bottleneck service on top of t; using the exact form keeps the selector's
  // crossover where the simulator actually measures it (see queueing.hpp).
  return sim::md1_sojourn_latency(candidate.period, candidate.latency,
                                  lambda);
}

std::size_t select_scheme(std::span<const Candidate> candidates,
                          double lambda) {
  PICO_CHECK(!candidates.empty());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::size_t best = 0;
  double best_latency = kInf;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double predicted = predicted_latency(candidates[i], lambda);
    if (predicted < best_latency ||
        (predicted == best_latency &&
         candidates[i].period < candidates[best].period)) {
      best = i;
      best_latency = predicted;
    }
  }
  if (best_latency == kInf) {
    // Saturated either way: maximize throughput.
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      if (candidates[i].period < candidates[best].period) best = i;
    }
  }
  return best;
}

}  // namespace pico::adaptive
