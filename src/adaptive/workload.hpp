// Workload estimation (Eq. 15): exponentially weighted moving average of
// the measured arrival rate.  β is the weight of the newest observation.
#pragma once

#include "common/error.hpp"
#include "common/types.hpp"

namespace pico::adaptive {

class EwmaEstimator {
 public:
  explicit EwmaEstimator(double beta, double initial = 0.0)
      : beta_(beta), rate_(initial) {
    PICO_CHECK(beta > 0.0 && beta <= 1.0);
  }

  /// Fold in the rate measured over the last window:
  /// λ_t = β·λ̂ + (1 − β)·λ_{t−1}.
  void observe(double measured_rate) {
    PICO_CHECK(measured_rate >= 0.0);
    rate_ = beta_ * measured_rate + (1.0 - beta_) * rate_;
  }

  double rate() const { return rate_; }
  double beta() const { return beta_; }

 private:
  double beta_;
  double rate_;
};

}  // namespace pico::adaptive
