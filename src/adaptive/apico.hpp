// APICO — PICO plus adaptive parallel-scheme switching (§IV-C).
//
// Holds the candidate plans (by default: the OFL one-stage plan, which uses
// the whole cluster per inference and wins under light load, and the PICO
// pipeline, which wins under heavy load), an EWMA workload estimator, and a
// controller that re-selects the scheme each window.  The controller plugs
// directly into ClusterSimulator (simulation) and is equally usable by the
// real runtime's driver.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "adaptive/selector.hpp"
#include "adaptive/workload.hpp"
#include "sim/pipeline_sim.hpp"

namespace pico::adaptive {

struct ApicoOptions {
  double beta = 0.3;          ///< Eq. 15 EWMA weight
  Seconds window = 30.0;      ///< re-evaluation interval (seconds)
  double initial_rate = 0.0;  ///< λ_0
};

class ApicoController {
 public:
  /// `candidates` must be non-empty; index 0 is the initial scheme.
  ApicoController(std::vector<Candidate> candidates, ApicoOptions options);

  /// Build the default OFL-vs-PICO candidate pair for this model/cluster.
  static ApicoController make_default(const nn::Graph& graph,
                                      const Cluster& cluster,
                                      const NetworkModel& network,
                                      ApicoOptions options = {});

  /// Install on a simulator: sets the initial plan and the window
  /// controller.
  void attach(sim::ClusterSimulator& simulator);

  /// Re-estimate λ from one window's arrival count and return the chosen
  /// candidate (also usable outside the simulator).
  const Candidate& decide(int window_arrivals);

  /// Same, but from an already-computed arrival rate (tasks/second) — used
  /// when the measurement interval differs from the configured window
  /// (e.g. the wall-clock AdaptiveRuntime catching up after a blocked
  /// producer).
  const Candidate& decide_rate(double measured_rate);

  double estimated_rate() const { return estimator_.rate(); }
  const std::vector<Candidate>& candidates() const { return candidates_; }
  /// (time, scheme) of every controller decision during simulation.
  const std::vector<std::pair<Seconds, std::string>>& decisions() const {
    return decisions_;
  }

 private:
  std::vector<Candidate> candidates_;
  ApicoOptions options_;
  EwmaEstimator estimator_;
  std::size_t current_ = 0;
  std::vector<std::pair<Seconds, std::string>> decisions_;
};

}  // namespace pico::adaptive
