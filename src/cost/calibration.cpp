#include "cost/calibration.hpp"

#include <chrono>

#include "common/error.hpp"
#include "cost/flops.hpp"
#include "nn/executor.hpp"
#include "nn/graph.hpp"

namespace pico {

FlopsPerSec fit_capacity(std::span<const CalibrationSample> samples) {
  double ff = 0.0, ft = 0.0;
  for (const CalibrationSample& sample : samples) {
    PICO_CHECK(sample.flops >= 0.0 && sample.measured >= 0.0);
    ff += sample.flops * sample.flops;
    ft += sample.flops * sample.measured;
  }
  PICO_CHECK_MSG(ff > 0.0 && ft > 0.0,
                 "calibration needs samples with positive flops and time");
  return ff / ft;
}

double fit_alpha(std::span<const CalibrationSample> samples,
                 FlopsPerSec assumed_capacity) {
  PICO_CHECK(assumed_capacity > 0.0);
  // t = α · f / cap  ->  α = cap / fitted_capacity.
  return assumed_capacity / fit_capacity(samples);
}

double fit_r_squared(std::span<const CalibrationSample> samples,
                     FlopsPerSec capacity) {
  PICO_CHECK(capacity > 0.0 && !samples.empty());
  double mean = 0.0;
  for (const CalibrationSample& s : samples) mean += s.measured;
  mean /= static_cast<double>(samples.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (const CalibrationSample& s : samples) {
    const double predicted = s.flops / capacity;
    ss_res += (s.measured - predicted) * (s.measured - predicted);
    ss_tot += (s.measured - mean) * (s.measured - mean);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

std::vector<CalibrationSample> profile_host(const ProfileOptions& options) {
  PICO_CHECK(!options.sizes.empty() && options.repeats >= 1);
  Rng rng(options.seed);
  std::vector<CalibrationSample> samples;
  for (const int size : options.sizes) {
    PICO_CHECK(size >= 3);
    nn::Graph g;
    const int in = g.add_input({32, size, size});
    g.add_conv(in, 32, 3, 1, 1);
    g.finalize();
    g.randomize_weights(rng);
    Tensor input(g.input_shape());
    input.randomize(rng);
    const Flops flops = cost::model_flops(g);
    const nn::ExecOptions exec{.threads = options.threads};

    // Warm-up once (page faults, caches, pool threads), then timed repeats.
    (void)nn::execute(g, input, exec);
    for (int repeat = 0; repeat < options.repeats; ++repeat) {
      const auto start = std::chrono::steady_clock::now();
      const Tensor out = nn::execute(g, input, exec);
      const Seconds elapsed = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - start)
                                  .count();
      PICO_CHECK(out.size() > 0);
      samples.push_back({flops, elapsed});
    }
  }
  return samples;
}

Device calibrated_host_device(const ProfileOptions& options) {
  const std::vector<CalibrationSample> samples = profile_host(options);
  Device device;
  device.name = "host";
  device.capacity = fit_capacity(samples);
  device.alpha = 1.0;
  return device;
}

}  // namespace pico
