// Device calibration — the regression behind Eq. 5.
//
// The paper estimates compute time as t = α_k · θ / ϑ(d_k) where α_k is "a
// coefficient computed by a regression model" (§III-B) but never specifies
// the regression.  This module implements it: run real convolution
// workloads of increasing FLOP counts, time them, and fit the
// through-the-origin least squares line
//
//     measured_seconds ≈ flops / capacity            (fit_capacity)
//     measured_seconds ≈ α · flops / assumed_capacity (fit_alpha)
//
// profile_host() produces the samples on the current machine, so a user can
// build a Device whose capacity matches their actual hardware and feed the
// simulator/planner calibrated numbers instead of the Pi defaults.
#pragma once

#include <span>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"

namespace pico {

struct CalibrationSample {
  Flops flops = 0.0;
  Seconds measured = 0.0;
};

/// Least-squares through the origin: capacity = Σ f² / Σ (f · t).
/// Requires at least one sample with positive flops and time.
FlopsPerSec fit_capacity(std::span<const CalibrationSample> samples);

/// α such that t ≈ α · f / assumed_capacity (Eq. 5's correction factor for
/// a device whose nominal capacity is already known).
double fit_alpha(std::span<const CalibrationSample> samples,
                 FlopsPerSec assumed_capacity);

/// Coefficient of determination (R²) of the through-origin fit — how well
/// the linear cost model (Eq. 5) explains the measurements.
double fit_r_squared(std::span<const CalibrationSample> samples,
                     FlopsPerSec capacity);

struct ProfileOptions {
  /// Convolution sizes to time (spatial extent of a 3x3, 32->32 channel
  /// conv); each contributes one sample per repeat.
  std::vector<int> sizes{16, 24, 32, 48, 64};
  int repeats = 3;
  std::uint64_t seed = 1;
  /// Intra-device threads the profiled kernels use (0 = process default,
  /// i.e. PICO_THREADS or hardware concurrency).  Must match what the
  /// runtime will use, or the fitted capacity ϑ(d_k) feeding Eq. 5 won't
  /// describe the device: a quad-core Pi profiled single-threaded looks 3-4x
  /// slower than the device the planner actually schedules onto.
  int threads = 0;
};

/// Time real convolutions on this machine and return (flops, seconds)
/// samples.  Wall-clock based: results vary with machine load.
std::vector<CalibrationSample> profile_host(
    const ProfileOptions& options = {});

/// A Device modeling the current machine: capacity from profile_host +
/// fit_capacity, alpha = 1.
Device calibrated_host_device(const ProfileOptions& options = {});

}  // namespace pico
