// FLOP accounting — the paper's Eq. 2 and Eq. 4.
//
// FLOPs are counted as multiply-accumulates for conv (Eq. 2:
// k_h·k_w·c_in·h·w·c_out for an output region of h×w) and FC; pooling,
// batch-norm, ReLU and residual adds are counted at one operation per
// produced element (the paper drops them as negligible — keeping them makes
// the simulator's busy-time accounting exact without changing any shape).
// Concat and Input are free.
#pragma once

#include "common/types.hpp"
#include "nn/graph.hpp"
#include "tensor/region.hpp"

namespace pico::cost {

/// Eq. 2 (generalized): FLOPs for node `id` to produce `out_region`.
Flops node_flops(const nn::Graph& graph, int id, const Region& out_region);

/// FLOPs for node `id` producing its whole output map.
Flops node_flops_full(const nn::Graph& graph, int id);

/// Eq. 4: FLOPs one device spends producing `out_region` of node `last`'s
/// output with the fused segment [first, last] — includes all halo
/// (overlapped) computation via the receptive-field demand of every
/// intermediate layer.
Flops segment_flops(const nn::Graph& graph, int first, int last,
                    const Region& out_region);

/// FLOPs to run segment [first, last] once, producing full maps (the
/// no-redundancy baseline used for redundancy ratios).
Flops segment_flops_full(const nn::Graph& graph, int first, int last);

/// Whole-model FLOPs (full maps).
Flops model_flops(const nn::Graph& graph);

/// Bytes of a feature-map region with `channels` channels (the paper's φ).
Bytes region_bytes(int channels, const Region& region);

/// Bytes of node `id`'s full output map.
Bytes node_output_bytes(const nn::Graph& graph, int id);

}  // namespace pico::cost
