#include "cost/flops.hpp"

#include "common/error.hpp"
#include "nn/receptive.hpp"

namespace pico::cost {

using nn::Node;
using nn::OpKind;

Flops node_flops(const nn::Graph& graph, int id, const Region& out_region) {
  if (out_region.empty()) return 0.0;
  const Node& node = graph.node(id);
  const double area = static_cast<double>(out_region.area());
  switch (node.kind) {
    case OpKind::Conv:
      // Eq. 2: k_h · k_w · c_{i-1} · h_i · w_i · c_i (per-group input
      // channels for grouped/depthwise convolutions)
      return static_cast<double>(node.win.kh) * node.win.kw *
             (node.in_shape.channels / node.groups) * area *
             node.out_channels;
    case OpKind::MaxPool:
    case OpKind::AvgPool:
      return static_cast<double>(node.win.kh) * node.win.kw *
             node.in_shape.channels * area;
    case OpKind::ReLU:
    case OpKind::BatchNorm:
    case OpKind::Add:
      return static_cast<double>(node.out_shape.channels) * area;
    case OpKind::Concat:
    case OpKind::Input:
      return 0.0;
    case OpKind::FullyConnected:
      return static_cast<double>(node.in_shape.elements()) *
             node.out_channels;
    case OpKind::GlobalAvgPool:
      return static_cast<double>(node.in_shape.elements());
  }
  return 0.0;
}

Flops node_flops_full(const nn::Graph& graph, int id) {
  const Node& node = graph.node(id);
  return node_flops(graph, id,
                    Region::full(node.out_shape.height, node.out_shape.width));
}

Flops segment_flops(const nn::Graph& graph, int first, int last,
                    const Region& out_region) {
  if (out_region.empty()) return 0.0;
  const std::vector<Region> demand =
      nn::segment_demand(graph, first, last, out_region);
  Flops total = 0.0;
  for (int id = first; id <= last; ++id) {
    total += node_flops(graph, id,
                        demand[static_cast<std::size_t>(id - first)]);
  }
  return total;
}

Flops segment_flops_full(const nn::Graph& graph, int first, int last) {
  PICO_CHECK(first >= 1 && first <= last && last < graph.size());
  Flops total = 0.0;
  for (int id = first; id <= last; ++id) {
    total += node_flops_full(graph, id);
  }
  return total;
}

Flops model_flops(const nn::Graph& graph) {
  return segment_flops_full(graph, 1, graph.size() - 1);
}

Bytes region_bytes(int channels, const Region& region) {
  if (region.empty()) return 0.0;
  return kBytesPerScalar * channels * static_cast<double>(region.area());
}

Bytes node_output_bytes(const nn::Graph& graph, int id) {
  const Node& node = graph.node(id);
  return region_bytes(
      node.out_shape.channels,
      Region::full(node.out_shape.height, node.out_shape.width));
}

}  // namespace pico::cost
