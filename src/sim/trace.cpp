#include "sim/trace.hpp"

#include <fstream>
#include <ostream>

#include "common/error.hpp"

namespace pico::sim {

void write_task_csv(std::ostream& os, const SimResult& result) {
  os << "id,arrival,start,completion,waiting,latency,scheme\n";
  for (const TaskRecord& task : result.tasks) {
    os << task.id << ',' << task.arrival << ',' << task.start << ','
       << task.completion << ',' << task.waiting() << ',' << task.latency()
       << ',' << task.scheme << '\n';
  }
}

void write_task_csv_file(const std::string& path, const SimResult& result) {
  std::ofstream file(path, std::ios::trunc);
  PICO_CHECK_MSG(file.good(), "cannot open for writing: " << path);
  write_task_csv(file, result);
  PICO_CHECK_MSG(file.good(), "write failed: " << path);
}

void write_device_csv(std::ostream& os, const SimResult& result) {
  os << "device,busy,total_flops,redundant_flops,utilization,"
        "redundancy_ratio\n";
  for (const DeviceUsage& usage : result.devices) {
    os << usage.device << ',' << usage.busy << ',' << usage.total_flops
       << ',' << usage.redundant_flops << ','
       << result.utilization(usage.device) << ','
       << usage.redundancy_ratio() << '\n';
  }
}

void write_device_csv_file(const std::string& path,
                           const SimResult& result) {
  std::ofstream file(path, std::ios::trunc);
  PICO_CHECK_MSG(file.good(), "cannot open for writing: " << path);
  write_device_csv(file, result);
  PICO_CHECK_MSG(file.good(), "write failed: " << path);
}

}  // namespace pico::sim
