#include "sim/trace.hpp"

#include <fstream>
#include <map>
#include <ostream>

#include "common/error.hpp"

namespace pico::sim {

namespace {

std::int64_t to_ns(Seconds s) { return static_cast<std::int64_t>(s * 1e9); }

/// Total queued time per task across all chain nodes.
std::map<long long, Seconds> queue_wait_by_task(const SimResult& result) {
  std::map<long long, Seconds> out;
  for (const StageRecord& record : result.stage_records) {
    out[record.task] += record.wait();
  }
  return out;
}

}  // namespace

void write_task_csv(std::ostream& os, const SimResult& result) {
  const std::map<long long, Seconds> waits = queue_wait_by_task(result);
  os << "id,arrival,start,completion,waiting,queue_wait,latency,scheme\n";
  for (const TaskRecord& task : result.tasks) {
    const auto it = waits.find(task.id);
    const Seconds queue_wait = it == waits.end() ? 0.0 : it->second;
    os << task.id << ',' << task.arrival << ',' << task.start << ','
       << task.completion << ',' << task.waiting() << ',' << queue_wait
       << ',' << task.latency() << ',' << task.scheme << '\n';
  }
}

void write_task_csv_file(const std::string& path, const SimResult& result) {
  std::ofstream file(path, std::ios::trunc);
  PICO_CHECK_MSG(file.good(), "cannot open for writing: " << path);
  write_task_csv(file, result);
  PICO_CHECK_MSG(file.good(), "write failed: " << path);
}

void write_stage_csv(std::ostream& os, const SimResult& result) {
  os << "task,stage,phase,enqueue,start,completion,wait,service\n";
  for (const StageRecord& record : result.stage_records) {
    os << record.task << ',' << record.stage << ','
       << to_string(record.phase) << ',' << record.enqueue << ','
       << record.start << ',' << record.completion << ',' << record.wait()
       << ',' << record.service() << '\n';
  }
}

void write_stage_csv_file(const std::string& path, const SimResult& result) {
  std::ofstream file(path, std::ios::trunc);
  PICO_CHECK_MSG(file.good(), "cannot open for writing: " << path);
  write_stage_csv(file, result);
  PICO_CHECK_MSG(file.good(), "write failed: " << path);
}

void write_device_csv(std::ostream& os, const SimResult& result) {
  os << "device,busy,total_flops,redundant_flops,utilization,"
        "redundancy_ratio\n";
  for (const DeviceUsage& usage : result.devices) {
    os << usage.device << ',' << usage.busy << ',' << usage.total_flops
       << ',' << usage.redundant_flops << ','
       << result.utilization(usage.device) << ','
       << usage.redundancy_ratio() << '\n';
  }
}

void write_device_csv_file(const std::string& path,
                           const SimResult& result) {
  std::ofstream file(path, std::ios::trunc);
  PICO_CHECK_MSG(file.good(), "cannot open for writing: " << path);
  write_device_csv(file, result);
  PICO_CHECK_MSG(file.good(), "write failed: " << path);
}

std::vector<obs::SpanRecord> to_spans(const SimResult& result) {
  std::vector<obs::SpanRecord> spans;
  spans.reserve(result.tasks.size() + 2 * result.stage_records.size());
  for (const TaskRecord& task : result.tasks) {
    obs::SpanRecord span;
    span.name = "task";
    span.category = "task";
    span.track = obs::task_track();
    span.task_id = task.id;
    span.start_ns = to_ns(task.arrival);
    span.duration_ns = to_ns(task.completion) - to_ns(task.arrival);
    span.args = {{"scheme", task.scheme}};
    spans.push_back(std::move(span));
  }
  for (const StageRecord& record : result.stage_records) {
    // Sequential plans (stage -1) render on the stage-0 row.
    const std::int64_t track =
        obs::stage_track(record.stage < 0 ? 0 : record.stage);
    if (record.wait() > 0.0) {
      obs::SpanRecord wait;
      wait.name = "queue_wait";
      wait.category = "queue";
      wait.track = track;
      wait.task_id = record.task;
      wait.start_ns = to_ns(record.enqueue);
      wait.duration_ns = to_ns(record.start) - to_ns(record.enqueue);
      spans.push_back(std::move(wait));
    }
    obs::SpanRecord span;
    span.name = to_string(record.phase);
    span.category = "stage";
    span.track = track;
    span.task_id = record.task;
    span.start_ns = to_ns(record.start);
    span.duration_ns = to_ns(record.completion) - to_ns(record.start);
    span.args = {{"stage", std::to_string(record.stage)}};
    spans.push_back(std::move(span));
  }
  return spans;
}

void write_chrome_trace(std::ostream& os, const SimResult& result) {
  std::map<std::int64_t, std::string> track_names;
  track_names[obs::task_track()] = "tasks";
  for (const StageRecord& record : result.stage_records) {
    const int stage = record.stage < 0 ? 0 : record.stage;
    track_names[obs::stage_track(stage)] =
        "stage " + std::to_string(stage);
  }
  obs::write_chrome_trace(os, to_spans(result), track_names);
}

void write_chrome_trace_file(const std::string& path,
                             const SimResult& result) {
  std::ofstream file(path, std::ios::trunc);
  PICO_CHECK_MSG(file.good(), "cannot open for writing: " << path);
  write_chrome_trace(file, result);
  PICO_CHECK_MSG(file.good(), "write failed: " << path);
}

}  // namespace pico::sim
