#include "sim/arrivals.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pico::sim {

std::vector<Seconds> poisson_arrivals(Rng& rng, double rate,
                                      Seconds horizon) {
  PICO_CHECK(rate > 0.0 && horizon > 0.0);
  std::vector<Seconds> out;
  Seconds t = rng.exponential(rate);
  while (t < horizon) {
    out.push_back(t);
    t += rng.exponential(rate);
  }
  return out;
}

std::vector<Seconds> back_to_back_arrivals(int count) {
  PICO_CHECK(count >= 1);
  return std::vector<Seconds>(static_cast<std::size_t>(count), 0.0);
}

std::vector<Seconds> uniform_arrivals(double rate, Seconds horizon) {
  PICO_CHECK(rate > 0.0 && horizon > 0.0);
  std::vector<Seconds> out;
  for (Seconds t = 0.0; t < horizon; t += 1.0 / rate) out.push_back(t);
  return out;
}

std::vector<Seconds> bursty_arrivals(Rng& rng, double base_rate,
                                     double burst_rate,
                                     Seconds mean_calm_duration,
                                     Seconds mean_burst_duration,
                                     Seconds horizon) {
  PICO_CHECK(base_rate >= 0.0 && burst_rate > 0.0);
  PICO_CHECK(mean_calm_duration > 0.0 && mean_burst_duration > 0.0);
  PICO_CHECK(horizon > 0.0);
  std::vector<Seconds> out;
  Seconds t = 0.0;
  bool bursting = false;
  while (t < horizon) {
    const Seconds dwell = rng.exponential(
        1.0 / (bursting ? mean_burst_duration : mean_calm_duration));
    const Seconds phase_end = std::min(t + dwell, horizon);
    const double rate = bursting ? burst_rate : base_rate;
    if (rate > 0.0) {
      Seconds next = t + rng.exponential(rate);
      while (next < phase_end) {
        out.push_back(next);
        next += rng.exponential(rate);
      }
    }
    t = phase_end;
    bursting = !bursting;
  }
  return out;
}

}  // namespace pico::sim
