// Discrete-event simulation engine: a time-ordered queue of callbacks.
// Deterministic: events at equal times fire in scheduling order.
#pragma once

#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace pico::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` at absolute time `when` (must be >= now()).
  void schedule_at(Seconds when, Callback fn);
  /// Schedule `fn` `delay` seconds from now.
  void schedule_in(Seconds delay, Callback fn);

  Seconds now() const { return now_; }

  /// Run until the event queue is empty or `until` is passed (events at
  /// exactly `until` still fire).  Returns the final simulation time.
  Seconds run(Seconds until = kForever);

  bool empty() const { return queue_.empty(); }

  static constexpr Seconds kForever = 1e18;

 private:
  struct Event {
    Seconds when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace pico::sim
