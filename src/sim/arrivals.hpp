// Task arrival processes (§V-A "Inference task arrival scheme").
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace pico::sim {

/// Poisson process with `rate` tasks/second over [0, horizon).
std::vector<Seconds> poisson_arrivals(Rng& rng, double rate, Seconds horizon);

/// `count` tasks all available at t = 0 — each task starts as soon as the
/// previous one clears the entry stage; measures maximum throughput.
std::vector<Seconds> back_to_back_arrivals(int count);

/// Deterministic arrivals every 1/rate seconds over [0, horizon).
std::vector<Seconds> uniform_arrivals(double rate, Seconds horizon);

/// Two-state Markov-modulated Poisson process: the source alternates between
/// a calm state (rate `base_rate`) and a burst state (rate `burst_rate`),
/// with exponentially distributed dwell times of the given means.  Models
/// the paper's smart-home motivation — devices idle at work hours, busy in
/// the evening — at time scales short enough to stress the adaptive
/// controller's EWMA (Eq. 15).
std::vector<Seconds> bursty_arrivals(Rng& rng, double base_rate,
                                     double burst_rate,
                                     Seconds mean_calm_duration,
                                     Seconds mean_burst_duration,
                                     Seconds horizon);

}  // namespace pico::sim
