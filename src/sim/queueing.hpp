// Queueing-theory formulas (Theorem 2 and the underlying M/D/1 model).
//
// The cluster under a parallel scheme is an M/D/1 queue: Poisson arrivals at
// rate λ, one deterministic server whose service time is the scheme's period
// p, plus the residual pipeline latency.  Theorem 2 states the average
// inference latency as p(2 − pλ) / (2(1 − pλ)) + t, which decomposes into
// the bottleneck service p, the M/D/1 waiting time λp²/(2(1 − λp)), and the
// pipeline latency t (the paper folds one service into its first term).
#pragma once

#include "common/types.hpp"

namespace pico::sim {

/// True iff the queue is stable (λp < 1).
bool md1_stable(Seconds period, double lambda);

/// Mean M/D/1 waiting time in queue: λp² / (2(1 − λp)).  +inf if unstable.
Seconds md1_waiting_time(Seconds period, double lambda);

/// Theorem 2, verbatim: average inference latency p(2 − pλ)/(2(1 − pλ)) + t.
/// +inf when the queue is unstable.  Note the algebraic identity
/// p(2 − pλ)/(2(1 − pλ)) = p + Wq: since t (Eq. 11) already contains the
/// bottleneck stage's service time, the paper's expression counts that
/// service twice.  See md1_sojourn_latency for the exact prediction.
Seconds theorem2_latency(Seconds period, Seconds latency, double lambda);

/// Exact M/D/1-based prediction: waiting time at the bottleneck plus one
/// full pipeline traversal, Wq(p, λ) + t.  This is what the simulator
/// measures; the adaptive selector uses it (the constant offset between this
/// and Theorem 2 never flips a comparison between two pipelines with equal
/// periods, but can for unequal ones).  +inf when unstable.
Seconds md1_sojourn_latency(Seconds period, Seconds latency, double lambda);

}  // namespace pico::sim
