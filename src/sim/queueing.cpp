#include "sim/queueing.hpp"

#include <limits>

#include "common/error.hpp"

namespace pico::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

bool md1_stable(Seconds period, double lambda) {
  PICO_CHECK(period > 0.0 && lambda >= 0.0);
  return lambda * period < 1.0;
}

Seconds md1_waiting_time(Seconds period, double lambda) {
  if (!md1_stable(period, lambda)) return kInf;
  const double rho = lambda * period;
  return lambda * period * period / (2.0 * (1.0 - rho));
}

Seconds theorem2_latency(Seconds period, Seconds latency, double lambda) {
  if (!md1_stable(period, lambda)) return kInf;
  const double rho = lambda * period;
  return period * (2.0 - rho) / (2.0 * (1.0 - rho)) + latency;
}

Seconds md1_sojourn_latency(Seconds period, Seconds latency, double lambda) {
  if (!md1_stable(period, lambda)) return kInf;
  return md1_waiting_time(period, lambda) + latency;
}

}  // namespace pico::sim
