#include "sim/engine.hpp"

#include "common/error.hpp"

namespace pico::sim {

void Engine::schedule_at(Seconds when, Callback fn) {
  PICO_CHECK_MSG(when >= now_, "scheduling into the past: " << when << " < "
                                                            << now_);
  queue_.push({when, next_seq_++, std::move(fn)});
}

void Engine::schedule_in(Seconds delay, Callback fn) {
  PICO_CHECK(delay >= 0.0);
  schedule_at(now_ + delay, std::move(fn));
}

Seconds Engine::run(Seconds until) {
  while (!queue_.empty()) {
    if (queue_.top().when > until) break;
    // Copy out before pop so the callback may schedule freely.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.when;
    event.fn();
  }
  return now_;
}

}  // namespace pico::sim
