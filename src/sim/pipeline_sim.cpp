#include "sim/pipeline_sim.hpp"

#include <algorithm>
#include <deque>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "cost/flops.hpp"
#include "nn/receptive.hpp"
#include "partition/plan_cost.hpp"

namespace pico::sim {

const char* to_string(StagePhase phase) {
  switch (phase) {
    case StagePhase::Service: return "service";
    case StagePhase::Transfer: return "transfer";
    case StagePhase::Compute: return "compute";
  }
  return "?";
}

double SimResult::throughput() const {
  if (tasks.empty() || makespan <= 0.0) return 0.0;
  return static_cast<double>(tasks.size()) / makespan;
}

Seconds SimResult::mean_latency() const {
  if (tasks.empty()) return 0.0;
  double sum = 0.0;
  for (const TaskRecord& t : tasks) sum += t.latency();
  return sum / static_cast<double>(tasks.size());
}

Seconds SimResult::percentile_latency(double q) const {
  std::vector<double> latencies;
  latencies.reserve(tasks.size());
  for (const TaskRecord& t : tasks) latencies.push_back(t.latency());
  return percentile(std::move(latencies), q);
}

double SimResult::utilization(DeviceId device) const {
  if (makespan <= 0.0) return 0.0;
  for (const DeviceUsage& u : devices) {
    if (u.device == device) return u.busy / makespan;
  }
  return 0.0;
}

namespace {

/// One node of the service chain a task walks through.  Several chain nodes
/// may share one *physical* server (SharedLink: every transfer node runs on
/// the single AP server), which is what creates cross-stage contention.
struct ServerSpec {
  Seconds service = 0.0;
  std::size_t server = 0;  ///< physical server index
  int stage = -1;          ///< plan stage index (-1: sequential whole net)
  StagePhase phase = StagePhase::Service;
  /// Per-task contribution of this chain node to each device.
  struct Contribution {
    DeviceId device;
    Seconds busy;
    Flops total;
    Flops redundant;
  };
  std::vector<Contribution> contributions;
};

struct CompiledPlan {
  partition::Plan plan;  ///< owned copy
  std::vector<ServerSpec> servers;  ///< the chain, in task order
  std::size_t server_count = 0;     ///< number of physical servers
  Seconds total_latency = 0.0;
};

CompiledPlan compile_plan(const nn::Graph& graph, const Cluster& cluster,
                          const NetworkModel& network,
                          const partition::Plan& plan,
                          CommModel comm_model) {
  partition::validate_plan(graph, cluster, plan);
  CompiledPlan compiled;
  compiled.plan = plan;

  // Per-stage device work with redundancy attribution; reuse the static
  // accounting from plan_cost by building single-stage sub-plans.
  auto stage_contributions = [&](const partition::Stage& stage) {
    partition::Plan single;
    single.pipelined = plan.pipelined;
    single.scheme = plan.scheme;
    single.stages = {stage};
    std::vector<ServerSpec::Contribution> out;
    for (const partition::DeviceWork& w :
         partition::plan_device_work(graph, cluster, single)) {
      out.push_back({w.device, w.busy, w.total, w.redundant});
    }
    return out;
  };

  if (plan.pipelined) {
    // SharedLink: physical server 0 is the AP; computes get 1..S.
    std::size_t next_server =
        comm_model == CommModel::SharedLink ? 1 : 0;
    int stage_index = 0;
    for (const partition::Stage& stage : plan.stages) {
      const partition::StageCost cost =
          partition::stage_cost(graph, cluster, network, stage);
      if (comm_model == CommModel::Overlapped ||
          comm_model == CommModel::SharedLink) {
        // Transfer node (no device busy time) then compute node.
        ServerSpec transfer;
        transfer.service = cost.comm;
        transfer.server =
            comm_model == CommModel::SharedLink ? 0 : next_server++;
        transfer.stage = stage_index;
        transfer.phase = StagePhase::Transfer;
        compiled.servers.push_back(std::move(transfer));
        ServerSpec compute;
        compute.service = cost.compute;
        compute.server = next_server++;
        compute.stage = stage_index;
        compute.phase = StagePhase::Compute;
        compute.contributions = stage_contributions(stage);
        compiled.servers.push_back(std::move(compute));
      } else {
        ServerSpec server;
        server.service = cost.total();
        server.server = next_server++;
        server.stage = stage_index;
        server.contributions = stage_contributions(stage);
        compiled.servers.push_back(std::move(server));
      }
      compiled.total_latency += cost.total();
      ++stage_index;
    }
    compiled.server_count = next_server;
  } else {
    ServerSpec server;
    std::map<DeviceId, ServerSpec::Contribution> merged;
    for (const partition::Stage& stage : plan.stages) {
      server.service +=
          partition::stage_cost(graph, cluster, network, stage).total();
      for (const auto& c : stage_contributions(stage)) {
        auto [it, inserted] = merged.try_emplace(c.device, c);
        if (!inserted) {
          it->second.busy += c.busy;
          it->second.total += c.total;
          it->second.redundant += c.redundant;
        }
      }
    }
    for (const auto& [id, c] : merged) server.contributions.push_back(c);
    compiled.total_latency = server.service;
    compiled.servers.push_back(std::move(server));
    compiled.server_count = 1;
  }
  return compiled;
}

}  // namespace

struct ClusterSimulator::Impl {
  const nn::Graph& graph;
  const Cluster& cluster;
  const NetworkModel& network;
  CommModel comm_model = CommModel::Serialized;
  // Set by recluster(): later compiles use the degraded environment.
  std::optional<Cluster> cluster_override;
  std::optional<NetworkModel> network_override;

  const Cluster& effective_cluster() const {
    return cluster_override ? *cluster_override : cluster;
  }
  const NetworkModel& effective_network() const {
    return network_override ? *network_override : network;
  }

  Engine engine;
  std::optional<CompiledPlan> active;
  std::optional<CompiledPlan> pending;
  int switches = 0;

  struct Task {
    long long id = 0;
    Seconds arrival = 0.0;
    Seconds start = 0.0;
    // Per-chain-node timestamps (the task is copied node to node, so these
    // always describe the node currently serving it).
    Seconds node_enqueue = 0.0;
    Seconds node_start = 0.0;
  };
  std::vector<Seconds> arrivals;

  // Entry queue (arrived, not yet admitted) + per-physical-server state.
  std::deque<Task> entry_queue;
  struct ServerState {
    bool busy = false;
    /// (chain position, task) pairs waiting for this physical server.
    std::deque<std::pair<std::size_t, Task>> queue;
  };
  std::vector<ServerState> servers;
  int in_flight = 0;

  std::vector<TaskRecord> records;
  std::vector<StageRecord> stage_records;
  std::map<DeviceId, DeviceUsage> usage;
  Seconds makespan = 0.0;

  Seconds controller_interval = 0.0;
  Controller controller;
  int window_arrivals = 0;

  Impl(const nn::Graph& g, const Cluster& c, const NetworkModel& n)
      : graph(g), cluster(c), network(n) {}

  void install(const CompiledPlan& compiled) {
    servers.assign(compiled.server_count, {});
  }

  void apply_pending_if_drained() {
    if (!pending || in_flight != 0) return;
    active = std::move(*pending);
    pending.reset();
    ++switches;
    install(*active);
    try_admit();
  }

  void account(const ServerSpec& server) {
    for (const auto& c : server.contributions) {
      DeviceUsage& u = usage[c.device];
      u.device = c.device;
      u.busy += c.busy;
      u.total_flops += c.total;
      u.redundant_flops += c.redundant;
    }
  }

  void try_admit() {
    if (pending) return;  // draining for a switch
    if (entry_queue.empty()) return;
    if (servers[active->servers[0].server].busy) return;
    Task task = entry_queue.front();
    entry_queue.pop_front();
    task.start = engine.now();
    // The entry-queue wait belongs to the first chain node: its server is
    // free by construction here, so the node's own wait would always be 0.
    task.node_enqueue = task.arrival;
    ++in_flight;
    start_service(0, task);
    // Admission is one-at-a-time: the next task is admitted when the entry
    // chain node's server frees up (see finish_service).
  }

  void start_service(std::size_t position, Task task) {
    const ServerSpec& spec = active->servers[position];
    ServerState& state = servers[spec.server];
    PICO_CHECK(!state.busy);
    state.busy = true;
    task.node_start = engine.now();
    engine.schedule_in(spec.service, [this, position, task] {
      finish_service(position, task);
    });
  }

  void finish_service(std::size_t position, Task task) {
    // complete() may apply a pending plan switch, which replaces `active`
    // and reinstalls `servers` — no reference into either may be held
    // across it, so work with indices and re-check afterwards.
    const std::size_t server_id = active->servers[position].server;
    const bool fronts_chain = server_id == active->servers[0].server;
    servers[server_id].busy = false;
    account(active->servers[position]);
    stage_records.push_back({task.id, active->servers[position].stage,
                             active->servers[position].phase,
                             task.node_enqueue, task.node_start,
                             engine.now()});

    const int switches_before = switches;
    if (position + 1 < active->servers.size()) {
      forward(position + 1, task);
    } else {
      complete(task);
    }
    if (switches != switches_before) {
      // A plan switch drained and reinstalled the servers; the old queues
      // are gone and admission has already been restarted.
      return;
    }
    // The physical server is free: in-flight waiters first, then (if this
    // server also fronts the chain) new admissions.
    ServerState& state = servers[server_id];
    if (!state.queue.empty() && !state.busy) {
      auto [next_position, next_task] = state.queue.front();
      state.queue.pop_front();
      start_service(next_position, next_task);
    }
    if (!state.busy && fronts_chain) {
      try_admit();
    }
  }

  void forward(std::size_t position, Task task) {
    task.node_enqueue = engine.now();
    ServerState& state = servers[active->servers[position].server];
    if (state.busy) {
      state.queue.push_back({position, task});
    } else {
      start_service(position, task);
    }
  }

  void complete(const Task& task) {
    --in_flight;
    TaskRecord record;
    record.id = task.id;
    record.arrival = task.arrival;
    record.start = task.start;
    record.completion = engine.now();
    record.scheme = active->plan.scheme;
    records.push_back(std::move(record));
    makespan = std::max(makespan, engine.now());
    apply_pending_if_drained();
  }

  void on_arrival(Task task) {
    ++window_arrivals;
    entry_queue.push_back(task);
    try_admit();
  }

  void schedule_controller_tick() {
    engine.schedule_in(controller_interval, [this] {
      const int count = window_arrivals;
      window_arrivals = 0;
      ClusterSimulator* self = owner;
      controller(*self, engine.now(), count);
      // Keep ticking while there is anything left to do.
      if (!engine.empty() || !entry_queue.empty() || in_flight > 0) {
        schedule_controller_tick();
      }
    });
  }

  ClusterSimulator* owner = nullptr;
};

ClusterSimulator::ClusterSimulator(const nn::Graph& graph,
                                   const Cluster& cluster,
                                   const NetworkModel& network,
                                   CommModel comm_model)
    : impl_(std::make_unique<Impl>(graph, cluster, network)) {
  impl_->comm_model = comm_model;
  impl_->owner = this;
}

ClusterSimulator::~ClusterSimulator() = default;

void ClusterSimulator::set_plan(const partition::Plan& plan) {
  CompiledPlan compiled =
      compile_plan(impl_->graph, impl_->effective_cluster(),
                   impl_->effective_network(), plan, impl_->comm_model);
  if (!impl_->active) {
    impl_->active = std::move(compiled);
    impl_->install(*impl_->active);
  } else if (impl_->active->plan.scheme != plan.scheme ||
             impl_->active->servers.size() != compiled.servers.size()) {
    impl_->pending = std::move(compiled);
    impl_->apply_pending_if_drained();
  } else {
    // Same scheme & shape: treat as a no-op (avoids pointless drains).
  }
}

void ClusterSimulator::recluster(const Cluster& cluster,
                                 const NetworkModel& network,
                                 const partition::Plan& plan) {
  impl_->cluster_override = cluster;
  impl_->network_override = network;
  CompiledPlan compiled = compile_plan(impl_->graph, cluster, network, plan,
                                       impl_->comm_model);
  if (!impl_->active) {
    impl_->active = std::move(compiled);
    impl_->install(*impl_->active);
  } else {
    // Always swap — even for the "same" plan, the service times changed.
    impl_->pending = std::move(compiled);
    impl_->apply_pending_if_drained();
  }
}

void ClusterSimulator::add_arrivals(std::span<const Seconds> arrivals) {
  for (Seconds t : arrivals) {
    const long long id =
        static_cast<long long>(impl_->arrivals.size());
    impl_->arrivals.push_back(t);
    impl_->engine.schedule_at(t, [impl = impl_.get(), id, t] {
      impl->on_arrival({id, t});
    });
  }
}

void ClusterSimulator::set_controller(Seconds interval,
                                      Controller controller) {
  PICO_CHECK(interval > 0.0);
  impl_->controller_interval = interval;
  impl_->controller = std::move(controller);
  impl_->schedule_controller_tick();
}

SimResult ClusterSimulator::run() {
  PICO_CHECK_MSG(impl_->active, "set_plan must be called before run()");
  impl_->engine.run();
  PICO_CHECK_MSG(impl_->entry_queue.empty() && impl_->in_flight == 0,
                 "simulation ended with unfinished tasks");
  SimResult result;
  result.tasks = std::move(impl_->records);
  std::sort(result.tasks.begin(), result.tasks.end(),
            [](const TaskRecord& a, const TaskRecord& b) {
              return a.id < b.id;
            });
  result.stage_records = std::move(impl_->stage_records);
  std::sort(result.stage_records.begin(), result.stage_records.end(),
            [](const StageRecord& a, const StageRecord& b) {
              return a.task != b.task ? a.task < b.task : a.start < b.start;
            });
  result.makespan = impl_->makespan;
  result.plan_switches = impl_->switches;
  for (const auto& [id, usage] : impl_->usage) result.devices.push_back(usage);
  return result;
}

const std::string& ClusterSimulator::current_scheme() const {
  PICO_CHECK(impl_->active);
  return impl_->active->plan.scheme;
}

SimResult simulate_plan(const nn::Graph& graph, const Cluster& cluster,
                        const NetworkModel& network,
                        const partition::Plan& plan,
                        std::span<const Seconds> arrivals,
                        CommModel comm_model) {
  ClusterSimulator simulator(graph, cluster, network, comm_model);
  simulator.set_plan(plan);
  simulator.add_arrivals(arrivals);
  return simulator.run();
}

}  // namespace pico::sim
