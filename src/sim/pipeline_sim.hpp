// Cluster simulator.
//
// Replays a Plan on the modeled cluster under an arrival process, using the
// Eq. 5–9 stage costs as deterministic service times:
//
//  - pipelined plans are a tandem of stage servers (a stage serves one task
//    at a time; disjoint device sets let stages overlap across tasks);
//  - sequential plans (LW/EFL/OFL) are a single server whose service is the
//    sum of stage costs (the whole cluster serves one inference at a time).
//
// Produces per-task latency records and per-device busy/FLOP accounting —
// everything Figs. 8–13 and Table I report.  Plans can be switched at run
// time (APICO): a requested switch blocks new admissions, waits for
// in-flight tasks to drain (model segments must be redeployed), then swaps.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "nn/graph.hpp"
#include "partition/plan.hpp"
#include "sim/engine.hpp"

namespace pico::sim {

struct TaskRecord {
  long long id = 0;
  Seconds arrival = 0.0;
  Seconds start = 0.0;       ///< admission into the first stage
  Seconds completion = 0.0;
  std::string scheme;        ///< plan that served this task

  Seconds latency() const { return completion - arrival; }
  Seconds waiting() const { return start - arrival; }
};

/// Which part of a stage's service a chain node models (see CommModel):
/// Service = whole stage (serialized), Transfer/Compute = the split nodes of
/// the overlapped/shared-link models.
enum class StagePhase { Service, Transfer, Compute };

const char* to_string(StagePhase phase);

/// One task's passage through one chain node — the per-stage queueing
/// breakdown behind TaskRecord's end-to-end times.
struct StageRecord {
  long long task = 0;
  int stage = -1;  ///< plan stage index; -1 for sequential (whole-net) plans
  StagePhase phase = StagePhase::Service;
  Seconds enqueue = 0.0;  ///< arrival at this chain node
  Seconds start = 0.0;    ///< service start
  Seconds completion = 0.0;

  Seconds wait() const { return start - enqueue; }
  Seconds service() const { return completion - start; }
};

struct DeviceUsage {
  DeviceId device = -1;
  Seconds busy = 0.0;
  Flops total_flops = 0.0;
  Flops redundant_flops = 0.0;

  double redundancy_ratio() const {
    return total_flops > 0.0 ? redundant_flops / total_flops : 0.0;
  }
};

struct SimResult {
  std::vector<TaskRecord> tasks;
  /// Per-(task, chain node) records, sorted by (task, start).
  std::vector<StageRecord> stage_records;
  Seconds makespan = 0.0;  ///< completion time of the last task
  std::vector<DeviceUsage> devices;
  int plan_switches = 0;

  double throughput() const;        ///< completed tasks per second
  Seconds mean_latency() const;
  Seconds percentile_latency(double q) const;
  /// busy / makespan for the given device (0 when it never ran).
  double utilization(DeviceId device) const;
};

/// How a pipelined stage treats its transfer time.
///
///  - Serialized: a stage serves one task at a time for comm + comp seconds
///    (exactly Eq. 9; simulated throughput matches 1/period of the cost
///    model).
///  - Overlapped: the paper's runtime (Fig. 6) runs receive/send threads
///    next to the compute thread, so while a stage computes task n it can
///    already transfer task n±1.  Modeled as two tandem servers per stage
///    (transfer, then compute): per-task latency stays comm + comp, but the
///    sustainable period becomes max(comm, comp) — this is what the paper's
///    measured device utilizations (Table I, Fig. 13) reflect.
///  - SharedLink: like Overlapped, but ALL stages' transfers contend for
///    one medium (the single WiFi AP): transfer jobs from every stage queue
///    at a single link server.  Eq. 8–10 price each stage's communication
///    independently, implicitly assuming transfers of different stages never
///    collide; this mode measures what that assumption hides
///    (bench_ablation_contention).
///
/// Sequential (one-stage-scheme) plans always serialize: they keep a single
/// inference in flight by construction.
enum class CommModel { Serialized, Overlapped, SharedLink };

class ClusterSimulator {
 public:
  ClusterSimulator(const nn::Graph& graph, const Cluster& cluster,
                   const NetworkModel& network,
                   CommModel comm_model = CommModel::Serialized);
  ~ClusterSimulator();

  ClusterSimulator(const ClusterSimulator&) = delete;
  ClusterSimulator& operator=(const ClusterSimulator&) = delete;

  /// Must be called once before run(); later calls from a controller are
  /// treated as switch requests (drain-then-swap).
  void set_plan(const partition::Plan& plan);

  /// Fault injection: from the moment the switch applies (drain-then-swap,
  /// like set_plan), service times are recomputed against `cluster` — e.g.
  /// a straggler whose capacity dropped, or a device whose link degraded
  /// via the network model's per-device scaling.  The plan may be changed
  /// in the same call (replanning against the degraded cluster) or kept.
  void recluster(const Cluster& cluster, const NetworkModel& network,
                 const partition::Plan& plan);

  void add_arrivals(std::span<const Seconds> arrivals);

  /// Invoked every `interval` simulated seconds with the number of arrivals
  /// observed in the closing window; may call set_plan to switch.
  using Controller =
      std::function<void(ClusterSimulator&, Seconds now, int window_arrivals)>;
  void set_controller(Seconds interval, Controller controller);

  /// Run until every submitted task completes.
  SimResult run();

  const std::string& current_scheme() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-shot convenience: simulate `plan` under `arrivals` and return stats.
SimResult simulate_plan(const nn::Graph& graph, const Cluster& cluster,
                        const NetworkModel& network,
                        const partition::Plan& plan,
                        std::span<const Seconds> arrivals,
                        CommModel comm_model = CommModel::Serialized);

}  // namespace pico::sim
