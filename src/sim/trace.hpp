// Simulation trace export: per-task and per-stage records and per-device
// usage as CSV, for plotting the paper's figures or post-processing a run
// externally — plus Chrome about://tracing JSON via the shared obs encoder
// (one exporter, two producers: this simulator and the threaded runtime).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sim/pipeline_sim.hpp"

namespace pico::sim {

/// One row per task:
/// id,arrival,start,completion,waiting,queue_wait,latency,scheme
/// `waiting` is the entry-queue wait (start - arrival); `queue_wait` is the
/// total time spent queued at chain nodes (summed StageRecord waits).
void write_task_csv(std::ostream& os, const SimResult& result);
void write_task_csv_file(const std::string& path, const SimResult& result);

/// One row per (task, chain node):
/// task,stage,phase,enqueue,start,completion,wait,service
void write_stage_csv(std::ostream& os, const SimResult& result);
void write_stage_csv_file(const std::string& path, const SimResult& result);

/// One row per device: device,busy,total_flops,redundant_flops,
/// utilization,redundancy_ratio
void write_device_csv(std::ostream& os, const SimResult& result);
void write_device_csv_file(const std::string& path, const SimResult& result);

/// Convert a simulation result to obs spans (simulated seconds -> ns on the
/// same track scheme the runtime tracer uses): one "task" span per task plus
/// one span per StageRecord (and a "queue_wait" span where a task waited).
std::vector<obs::SpanRecord> to_spans(const SimResult& result);

/// Chrome trace-event JSON of the whole run (to_spans + obs encoder).
void write_chrome_trace(std::ostream& os, const SimResult& result);
void write_chrome_trace_file(const std::string& path, const SimResult& result);

}  // namespace pico::sim
