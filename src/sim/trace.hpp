// Simulation trace export: per-task records and per-device usage as CSV,
// for plotting the paper's figures or post-processing a run externally.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/pipeline_sim.hpp"

namespace pico::sim {

/// One row per task: id,arrival,start,completion,waiting,latency,scheme
void write_task_csv(std::ostream& os, const SimResult& result);
void write_task_csv_file(const std::string& path, const SimResult& result);

/// One row per device: device,busy,total_flops,redundant_flops,
/// utilization,redundancy_ratio
void write_device_csv(std::ostream& os, const SimResult& result);
void write_device_csv_file(const std::string& path, const SimResult& result);

}  // namespace pico::sim
