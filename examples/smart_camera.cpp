// Smart-home camera scenario (the paper's §I motivation): a camera feeds
// frames to a cluster of idle household devices for object detection
// (YOLOv2).  Over a day the workload swings — almost nothing while the
// occupants are out, bursts when they are home — and APICO switches between
// the one-stage fused scheme (best response time when idle) and the PICO
// pipeline (needed to keep up in the evening).
//
//   ./examples/smart_camera
#include <cstdio>

#include "adaptive/apico.hpp"
#include "common/rng.hpp"
#include "core/planner.hpp"
#include "models/zoo.hpp"
#include "sim/arrivals.hpp"
#include "sim/pipeline_sim.hpp"

int main() {
  using namespace pico;

  const nn::Graph model = models::yolov2();
  const Cluster cluster = Cluster::paper_heterogeneous();
  NetworkModel network;  // 50 Mbps WiFi AP

  auto controller = adaptive::ApicoController::make_default(
      model, cluster, network, {.beta = 0.3, .window = 120.0});
  const auto& ofl = controller.candidates()[0];
  const auto& pico = controller.candidates()[1];
  std::printf("one-stage (OFL): period=%.1fs latency=%.1fs\n", ofl.period,
              ofl.latency);
  std::printf("pipeline (PICO): period=%.1fs latency=%.1fs\n\n", pico.period,
              pico.latency);

  // A simulated day: morning trickle, quiet workday, busy evening.
  Rng rng(7);
  std::vector<Seconds> arrivals;
  struct Phase {
    const char* name;
    Seconds start, duration;
    double rate;  // frames per second
  };
  const double capacity = 1.0 / pico.period;
  const Phase phases[] = {
      {"morning (07:00-09:00)", 0.0, 7200.0, 0.30 * capacity},
      {"workday (09:00-18:00)", 7200.0, 32400.0, 0.05 * capacity},
      {"evening (18:00-23:00)", 39600.0, 18000.0, 0.85 * capacity},
  };
  for (const Phase& phase : phases) {
    std::printf("%s: %.3f frames/s (%.0f%% of pipeline capacity)\n",
                phase.name, phase.rate, 100.0 * phase.rate * pico.period);
    for (const Seconds t :
         sim::poisson_arrivals(rng, phase.rate, phase.duration)) {
      arrivals.push_back(phase.start + t);
    }
  }

  sim::ClusterSimulator simulator(model, cluster, network);
  controller.attach(simulator);
  simulator.add_arrivals(arrivals);
  const auto result = simulator.run();

  // Per-phase mean latency and the schemes used.
  std::printf("\nprocessed %zu frames, %d scheme switches\n",
              result.tasks.size(), result.plan_switches);
  for (const Phase& phase : phases) {
    double latency_sum = 0.0;
    int count = 0, pico_count = 0;
    for (const auto& task : result.tasks) {
      if (task.arrival < phase.start ||
          task.arrival >= phase.start + phase.duration) {
        continue;
      }
      latency_sum += task.latency();
      ++count;
      pico_count += task.scheme == "PICO";
    }
    if (count == 0) continue;
    std::printf("%s: mean latency %.1fs over %d frames (%d%% on PICO)\n",
                phase.name, latency_sum / count, count,
                100 * pico_count / count);
  }

  std::printf("\nscheme decisions over the day:\n");
  std::string last;
  for (const auto& [when, scheme] : controller.decisions()) {
    if (scheme == last) continue;
    std::printf("  t=%6.0fs (%02d:%02d) -> %s\n", when,
                7 + static_cast<int>(when) / 3600,
                (static_cast<int>(when) % 3600) / 60, scheme.c_str());
    last = scheme;
  }
  return 0;
}
