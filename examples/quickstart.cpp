// Quickstart: plan a pipelined cooperative inference for a small CNN on the
// paper's heterogeneous 8-Raspberry-Pi cluster, inspect the plan and its
// predicted period/latency, then actually run it on the threaded runtime
// and check the distributed result against single-device inference.
//
//   ./examples/quickstart
#include <cstdio>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "core/planner.hpp"
#include "cost/flops.hpp"
#include "models/zoo.hpp"
#include "nn/executor.hpp"
#include "runtime/pipeline.hpp"

int main() {
  using namespace pico;
  log::set_level(log::Level::Info);

  // 1. A model and a cluster.  The toy model is the paper's §V-C network
  //    (8 conv + 2 pool on 64x64 input); the cluster is Table I's:
  //    2x1.2GHz + 2x800MHz + 4x600MHz Pi-4B-class cores behind 50Mbps WiFi.
  nn::Graph model = models::toy_mnist();
  Rng rng(2024);
  model.randomize_weights(rng);
  const Cluster cluster = Cluster::paper_heterogeneous();
  NetworkModel network;  // 50 Mbps default

  std::printf("model: %d nodes, %.2f MFLOPs per frame\n", model.size() - 1,
              cost::model_flops(model) / 1e6);
  std::printf("cluster: %d devices, %.2f GMAC/s total\n\n", cluster.size(),
              cluster.total_capacity() / 1e9);

  // 2. Plan with PICO and compare against the one-stage baselines.
  for (const Scheme scheme : {Scheme::LayerWise, Scheme::EarlyFused,
                              Scheme::OptimalFused, Scheme::Pico}) {
    const auto p = plan(model, cluster, network, scheme);
    const auto cost = evaluate(model, cluster, network, p);
    std::printf("%-5s  stages=%d  period=%.3fs  latency=%.3fs\n",
                scheme_name(scheme), p.stage_count(), cost.period,
                cost.latency);
  }

  const auto pico_plan = plan(model, cluster, network, Scheme::Pico);
  std::printf("\n%s\n", partition::describe_plan(model, pico_plan).c_str());

  // 3. Execute for real: one worker thread per device, scatter/compute/
  //    gather per stage, with genuine tensor math.
  Tensor frame(model.input_shape());
  frame.randomize(rng);
  runtime::PipelineRuntime runtime(model, pico_plan);
  const Tensor distributed = runtime.infer(frame);
  const Tensor local = nn::execute(model, frame);
  std::printf("distributed vs single-device max|diff| = %g  (%s)\n",
              Tensor::max_abs_diff(distributed, local),
              Tensor::max_abs_diff(distributed, local) == 0.0f
                  ? "exact match"
                  : "MISMATCH");
  return 0;
}
