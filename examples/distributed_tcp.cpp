// Distributed inference over real TCP sockets — the paper's §IV-D
// implementation exercised end to end on one machine: each simulated edge
// device is a worker thread behind a loopback TCP connection with
// length-prefixed frames, the stage coordinators split feature maps with
// halos, scatter, gather and stitch, and a stream of frames flows through
// the pipeline concurrently.
//
//   ./examples/distributed_tcp [frames]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rng.hpp"
#include "core/planner.hpp"
#include "models/zoo.hpp"
#include "nn/executor.hpp"
#include "runtime/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace pico;
  const int frames = argc > 1 ? std::atoi(argv[1]) : 4;

  // VGG16 body at a reduced input size so single-machine compute stays
  // snappy; the distributed glue (sockets, framing, halos) is identical to
  // the full-size case.
  nn::Graph model = models::vgg16({.input_size = 64});
  Rng rng(99);
  model.randomize_weights(rng);
  const Cluster cluster = Cluster::paper_heterogeneous();
  NetworkModel network;

  const auto p = plan(model, cluster, network, Scheme::Pico);
  std::printf("%s\n", partition::describe_plan(model, p).c_str());

  runtime::PipelineRuntime rt(model, p,
                              {.transport = runtime::TransportKind::Tcp});

  std::vector<Tensor> inputs;
  std::vector<std::future<Tensor>> futures;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < frames; ++i) {
    Tensor frame(model.input_shape());
    frame.randomize(rng);
    inputs.push_back(frame);
    futures.push_back(rt.submit(std::move(frame)));
  }
  int exact = 0;
  for (int i = 0; i < frames; ++i) {
    const Tensor got = futures[static_cast<std::size_t>(i)].get();
    const Tensor expected =
        nn::execute(model, inputs[static_cast<std::size_t>(i)]);
    exact += Tensor::max_abs_diff(got, expected) == 0.0f;
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::printf("pushed %d frames through %d pipelined stages over TCP\n",
              frames, p.stage_count());
  std::printf("wall time %.2fs (%.2f frames/s on this machine)\n", wall,
              frames / wall);
  std::printf("%d/%d frames bit-identical to single-device inference\n",
              exact, frames);
  return exact == frames ? 0 : 1;
}
