// Edge deployment walkthrough — the full lifecycle a user of this library
// goes through:
//
//   1. load a network from a Darknet-style .cfg file,
//   2. load (here: generate + save + reload) its weights from a binary blob,
//   3. plan both a one-stage and a pipelined partition for the cluster,
//   4. serve frames through the wall-clock AdaptiveRuntime, which counts
//      arrivals per window, estimates the rate (Eq. 15) and switches
//      between the schemes with drain-then-swap,
//   5. verify every produced result against single-device inference.
//
//   ./examples/edge_deployment [path/to/model.cfg]
#include <chrono>
#include <cstdio>
#include <thread>

#include "adaptive/selector.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "core/planner.hpp"
#include "models/cfg.hpp"
#include "nn/executor.hpp"
#include "nn/weights_io.hpp"
#include "obs/metrics.hpp"
#include "runtime/adaptive_runtime.hpp"

int main(int argc, char** argv) {
  using namespace pico;
  log::set_level(log::Level::Info);

  // 1. Model from config.
  const std::string cfg_path =
      argc > 1 ? argv[1] : std::string(PICO_CONFIG_DIR) + "/toy.cfg";
  nn::Graph model = models::load_cfg(cfg_path);
  std::printf("loaded %s: %d nodes, input %dx%dx%d\n", cfg_path.c_str(),
              model.size() - 1, model.input_shape().channels,
              model.input_shape().height, model.input_shape().width);

  // 2. Weights: in a real deployment these come from training; here we
  //    generate them, write the deployment blob, and load it back the way a
  //    device would at startup.
  {
    Rng rng(2026);
    model.randomize_weights(rng);
    nn::save_weights(model, "/tmp/pico_deploy_weights.bin");
  }
  nn::Graph deployed = models::load_cfg(cfg_path);
  nn::load_weights(deployed, "/tmp/pico_deploy_weights.bin");
  std::printf("weights blob: %lld parameters round-tripped\n",
              deployed.parameter_count());

  // 3. Candidate plans for the paper's heterogeneous cluster.
  const Cluster cluster = Cluster::paper_heterogeneous();
  NetworkModel network;  // 50 Mbps WiFi
  const auto ofl = plan(deployed, cluster, network, Scheme::OptimalFused);
  const auto pico = plan(deployed, cluster, network, Scheme::Pico);
  const std::vector<adaptive::Candidate> candidates{
      adaptive::make_candidate(deployed, cluster, network, ofl),
      adaptive::make_candidate(deployed, cluster, network, pico)};
  std::printf("OFL: period %.3fs | PICO: period %.3fs over %d stages\n",
              candidates[0].period, candidates[1].period,
              pico.stage_count());

  // 4. Serve a quiet phase then a burst through the adaptive runtime.
  Rng rng(7);
  Tensor frame(deployed.input_shape());
  frame.randomize(rng);
  const Tensor reference = nn::execute(deployed, frame);

  runtime::AdaptiveRuntime rt(deployed, candidates,
                              {.beta = 0.8, .window = 0.1, .runtime = {}});
  int exact = 0, total = 0;
  // Quiet: a frame every ~150 ms.
  for (int i = 0; i < 4; ++i) {
    exact += Tensor::max_abs_diff(rt.infer(frame), reference) == 0.0f;
    ++total;
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  }
  // Burst: everything at once.
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 32; ++i) futures.push_back(rt.submit(frame));
  for (auto& f : futures) {
    exact += Tensor::max_abs_diff(f.get(), reference) == 0.0f;
    ++total;
  }

  // 5. Report.
  std::printf("\n%d/%d frames bit-identical to single-device inference\n",
              exact, total);
  std::printf("scheme history:");
  for (const std::string& scheme : rt.scheme_history()) {
    std::printf(" %s", scheme.c_str());
  }
  std::printf("  (%d switches, final rate estimate %.1f frames/s)\n",
              rt.switches(), rt.estimated_rate());

  // The runtime kept metrics the whole time (always-on; see src/obs/).
  obs::Registry& metrics = obs::Registry::global();
  const obs::Histogram& latency =
      metrics.histogram("pico_task_latency_seconds");
  std::printf("task latency p50 %.0f ms, p99 %.0f ms; drain on switch %.0f ms\n",
              latency.percentile(0.5) * 1e3, latency.percentile(0.99) * 1e3,
              metrics.histogram("pico_adaptive_drain_seconds").mean() * 1e3);
  return exact == total ? 0 : 1;
}
