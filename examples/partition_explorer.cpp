// Partition explorer: a small CLI for studying how the paper's schemes
// behave as the model, cluster and network change — the tool you would
// reach for before deploying a model on your own edge cluster.
//
//   ./examples/partition_explorer [model] [devices] [freq_ghz] [mbps]
//   ./examples/partition_explorer yolov2 6 0.8 20
//   ./examples/partition_explorer path/to/custom.cfg 8 0 50
//
// `model` is a zoo name (vgg16|yolov2|resnet34|inception|toy) or a path to
// a Darknet-style .cfg file.  Prints, for every scheme: the stage
// structure, predicted period/latency, simulated saturated throughput,
// per-device utilization and redundancy.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/planner.hpp"
#include "models/cfg.hpp"
#include "models/zoo.hpp"
#include "partition/plan_cost.hpp"
#include "sim/arrivals.hpp"
#include "sim/pipeline_sim.hpp"

namespace {

using namespace pico;

nn::Graph parse_model(const char* name) {
  if (!std::strcmp(name, "vgg16")) return models::vgg16();
  if (!std::strcmp(name, "yolov2")) return models::yolov2();
  if (!std::strcmp(name, "resnet34")) return models::resnet34();
  if (!std::strcmp(name, "inception")) return models::inception();
  if (!std::strcmp(name, "toy")) return models::toy_mnist();
  if (std::strstr(name, ".cfg") != nullptr) return models::load_cfg(name);
  std::fprintf(stderr,
               "unknown model '%s' (vgg16|yolov2|resnet34|inception|toy or "
               "a .cfg path)\n",
               name);
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const char* model_name = argc > 1 ? argv[1] : "vgg16";
  const int devices = argc > 2 ? std::atoi(argv[2]) : 8;
  const double freq = argc > 3 ? std::atof(argv[3]) : 0.0;
  const double mbps = argc > 4 ? std::atof(argv[4]) : 50.0;

  const nn::Graph model = parse_model(model_name);
  // freq == 0 -> the paper's heterogeneous mix truncated to `devices`.
  const Cluster cluster =
      freq > 0.0 ? Cluster::paper_homogeneous(devices, freq)
                 : Cluster::paper_heterogeneous().prefix(devices);
  NetworkModel network;
  network.bandwidth = mbps * 1e6 / 8.0;

  std::printf("model=%s  devices=%d  bandwidth=%.0fMbps\n",
              model_name, cluster.size(), mbps);
  for (const Device& d : cluster.devices()) {
    std::printf("  %s: %.2f GMAC/s\n", d.name.c_str(), d.capacity / 1e9);
  }

  for (const Scheme scheme : {Scheme::LayerWise, Scheme::EarlyFused,
                              Scheme::OptimalFused, Scheme::Pico}) {
    const auto p = plan(model, cluster, network, scheme);
    const auto cost = evaluate(model, cluster, network, p);
    const auto result =
        sim::simulate_plan(model, cluster, network, p,
                           sim::back_to_back_arrivals(40),
                           sim::CommModel::Overlapped);

    std::printf("\n--- %s ---\n", scheme_name(scheme));
    std::printf("%s", partition::describe_plan(model, p).c_str());
    std::printf("predicted: period=%.2fs latency=%.2fs   simulated: %.2f "
                "tasks/min\n",
                cost.period, cost.latency, result.throughput() * 60.0);
    std::printf("redundancy: %.1f%% extra FLOPs vs one clean pass\n",
                100.0 * partition::plan_redundancy_ratio(model, p));
    for (const auto& usage : result.devices) {
      std::printf("  device %d: utilization %5.1f%%  redundancy %5.1f%%\n",
                  usage.device, 100.0 * result.utilization(usage.device),
                  100.0 * usage.redundancy_ratio());
    }
  }
  return 0;
}
