// Multi-process cluster: each "edge device" is a separate OS process.
//
// The closest single-machine stand-in for the paper's real deployment: the
// coordinator listens on a loopback TCP port, forks one worker process per
// device (each child calls runtime::serve_blocking — exactly what a device
// binary on a Raspberry Pi would run after `connect()`), and then drives
// the PICO pipeline through the bring-your-own-transport PipelineRuntime.
// No memory is shared after the fork: every feature map really crosses a
// socket.
//
//   ./examples/multiprocess_cluster [frames] [host]
//
// `host` (default 127.0.0.1) is what each worker dials — resolved via
// getaddrinfo, so a name works too.  Passing a non-loopback host makes the
// coordinator bind 0.0.0.0; point real devices at the printed port and the
// same code spans machines.
//
// Chaos: PICO_CHAOS_SEGV="<device>:<after>" makes that worker process raise
// a real SIGSEGV on its <after>-th request.  Every worker arms the crash
// handlers, so the dying process writes pico_postmortem_<pid>.json (honoring
// PICO_POSTMORTEM_DIR); the coordinator tolerates the death, verifies the
// artifact parses and holds the worker's final journal (the in-flight
// worker_serve), and prints its path.  This is the CI black-box drill.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/planner.hpp"
#include "models/zoo.hpp"
#include "nn/executor.hpp"
#include "obs/postmortem.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/transport.hpp"
#include "runtime/worker.hpp"

int main(int argc, char** argv) {
  using namespace pico;
  const int frames = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::string host = argc > 2 ? argv[2] : "127.0.0.1";

  DeviceId chaos_device = -1;
  long long chaos_after = 0;
  if (const char* env = std::getenv("PICO_CHAOS_SEGV");
      env != nullptr && *env != '\0') {
    const std::string spec = env;
    const std::size_t colon = spec.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= spec.size()) {
      std::fprintf(stderr, "PICO_CHAOS_SEGV must be <device>:<after>\n");
      return 1;
    }
    chaos_device = std::atoi(spec.substr(0, colon).c_str());
    chaos_after = std::atoll(spec.c_str() + colon + 1);
    if (chaos_after < 1) {
      std::fprintf(stderr, "PICO_CHAOS_SEGV request count must be >= 1\n");
      return 1;
    }
  }

  nn::Graph model = models::toy_mnist();
  Rng rng(77);
  model.randomize_weights(rng);
  const Cluster cluster = Cluster::paper_heterogeneous();
  NetworkModel network;
  const auto p = plan(model, cluster, network, Scheme::Pico);
  std::printf("%s", partition::describe_plan(model, p).c_str());

  // Devices used by the plan.
  std::vector<DeviceId> devices;
  for (const auto& stage : p.stages) {
    for (const auto& slice : stage.assignments) {
      devices.push_back(slice.device);
    }
  }

  runtime::TcpListener listener(
      0, host == "127.0.0.1" ? "127.0.0.1" : "0.0.0.0");
  std::printf("coordinator listening on %s:%u\n", host.c_str(),
              listener.port());
  std::vector<pid_t> children;
  pid_t chaos_pid = -1;
  std::map<DeviceId, std::unique_ptr<runtime::Connection>> connections;
  for (const DeviceId device : devices) {
    const pid_t pid = fork();
    if (pid == 0) {
      // Worker process: connect and serve until shutdown.  The model was
      // inherited copy-on-write by fork; a real device would load it from a
      // weights blob (see examples/edge_deployment).
      if (chaos_device >= 0) {
        // Crash drill: every worker arms the black box (the handler formats
        // the pid at dump time, so each process writes its own artifact),
        // and the targeted one is primed to fault.
        obs::install_postmortem_handlers();
        if (device == chaos_device) {
          runtime::set_debug_worker_segv_after(device, chaos_after);
        }
      }
      auto connection = runtime::tcp_connect(host, listener.port());
      runtime::serve_blocking(model, *connection, device);
      _exit(0);
    }
    children.push_back(pid);
    if (device == chaos_device) chaos_pid = pid;
    // Serial fork+accept keeps the device <-> socket mapping exact.
    connections.emplace(device, listener.accept());
  }
  std::printf("forked %zu worker processes\n", children.size());
  if (chaos_device >= 0 && chaos_pid < 0) {
    std::fprintf(stderr, "PICO_CHAOS_SEGV device %d is not in the plan\n",
                 chaos_device);
  }

  {
    runtime::PipelineRuntime rt(model, p, std::move(connections));
    Tensor frame(model.input_shape());
    int exact = 0;
    int dropped = 0;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < frames; ++i) {
      frame.randomize(rng);
      const Tensor expected = nn::execute(model, frame);
      try {
        exact += Tensor::max_abs_diff(rt.infer(frame), expected) == 0.0f;
      } catch (const std::exception& e) {
        // Expected under the chaos drill: the crashed worker takes its
        // in-flight task (and the rest of the run) with it.
        if (chaos_device < 0) throw;
        std::printf("frame %d failed after worker crash: %s\n", i, e.what());
        dropped = frames - i;
        break;
      }
    }
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    std::printf("%d/%d frames bit-identical across process boundaries "
                "(%.2f frames/s)\n",
                exact, frames - dropped, frames / wall);
    // rt's destructor sends Shutdown to every worker process.
  }

  int failures = 0;
  for (const pid_t pid : children) {
    int status = 0;
    waitpid(pid, &status, 0);
    if (pid == chaos_pid) {
      // The chaos target must die of the injected SIGSEGV, not exit.
      failures += !(WIFSIGNALED(status) && WTERMSIG(status) == SIGSEGV);
      continue;
    }
    failures += !(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }
  std::printf("all %zu worker processes exited %s: %s\n", children.size(),
              chaos_pid >= 0 ? "as expected" : "cleanly",
              failures == 0 ? "yes" : "NO");

  // Crash-drill verdict: the dying worker must have left a parseable black
  // box whose journal holds the in-flight request it was serving.
  if (chaos_pid >= 0) {
    const char* dir = std::getenv("PICO_POSTMORTEM_DIR");
    const std::string path = std::string(dir != nullptr && *dir ? dir : ".") +
                             "/pico_postmortem_" +
                             std::to_string(chaos_pid) + ".json";
    try {
      const obs::Postmortem pm = obs::load_postmortem(path);
      bool served = false;
      for (const obs::PostmortemEvent& event : pm.events) {
        served |= event.name == "worker_serve";
      }
      if (pm.reason != "SIGSEGV") {
        std::printf("postmortem reason is '%s', expected SIGSEGV\n",
                    pm.reason.c_str());
        ++failures;
      }
      if (!served) {
        std::printf("postmortem %s lacks the in-flight worker_serve event\n",
                    path.c_str());
        ++failures;
      }
      std::printf("postmortem artifact: %s (%zu journal event(s))\n",
                  path.c_str(), pm.events.size());
    } catch (const std::exception& e) {
      std::printf("postmortem artifact %s unusable: %s\n", path.c_str(),
                  e.what());
      ++failures;
    }
  }
  return failures;
}
