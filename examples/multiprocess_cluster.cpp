// Multi-process cluster: each "edge device" is a separate OS process.
//
// The closest single-machine stand-in for the paper's real deployment: the
// coordinator listens on a loopback TCP port, forks one worker process per
// device (each child calls runtime::serve_blocking — exactly what a device
// binary on a Raspberry Pi would run after `connect()`), and then drives
// the PICO pipeline through the bring-your-own-transport PipelineRuntime.
// No memory is shared after the fork: every feature map really crosses a
// socket.
//
//   ./examples/multiprocess_cluster [frames] [host]
//
// `host` (default 127.0.0.1) is what each worker dials — resolved via
// getaddrinfo, so a name works too.  Passing a non-loopback host makes the
// coordinator bind 0.0.0.0; point real devices at the printed port and the
// same code spans machines.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/planner.hpp"
#include "models/zoo.hpp"
#include "nn/executor.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/transport.hpp"
#include "runtime/worker.hpp"

int main(int argc, char** argv) {
  using namespace pico;
  const int frames = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::string host = argc > 2 ? argv[2] : "127.0.0.1";

  nn::Graph model = models::toy_mnist();
  Rng rng(77);
  model.randomize_weights(rng);
  const Cluster cluster = Cluster::paper_heterogeneous();
  NetworkModel network;
  const auto p = plan(model, cluster, network, Scheme::Pico);
  std::printf("%s", partition::describe_plan(model, p).c_str());

  // Devices used by the plan.
  std::vector<DeviceId> devices;
  for (const auto& stage : p.stages) {
    for (const auto& slice : stage.assignments) {
      devices.push_back(slice.device);
    }
  }

  runtime::TcpListener listener(
      0, host == "127.0.0.1" ? "127.0.0.1" : "0.0.0.0");
  std::printf("coordinator listening on %s:%u\n", host.c_str(),
              listener.port());
  std::vector<pid_t> children;
  std::map<DeviceId, std::unique_ptr<runtime::Connection>> connections;
  for (const DeviceId device : devices) {
    const pid_t pid = fork();
    if (pid == 0) {
      // Worker process: connect and serve until shutdown.  The model was
      // inherited copy-on-write by fork; a real device would load it from a
      // weights blob (see examples/edge_deployment).
      auto connection = runtime::tcp_connect(host, listener.port());
      runtime::serve_blocking(model, *connection);
      _exit(0);
    }
    children.push_back(pid);
    // Serial fork+accept keeps the device <-> socket mapping exact.
    connections.emplace(device, listener.accept());
  }
  std::printf("forked %zu worker processes\n", children.size());

  {
    runtime::PipelineRuntime rt(model, p, std::move(connections));
    Tensor frame(model.input_shape());
    int exact = 0;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < frames; ++i) {
      frame.randomize(rng);
      const Tensor expected = nn::execute(model, frame);
      exact += Tensor::max_abs_diff(rt.infer(frame), expected) == 0.0f;
    }
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    std::printf("%d/%d frames bit-identical across process boundaries "
                "(%.2f frames/s)\n",
                exact, frames, frames / wall);
    // rt's destructor sends Shutdown to every worker process.
  }

  int failures = 0;
  for (const pid_t pid : children) {
    int status = 0;
    waitpid(pid, &status, 0);
    failures += !(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }
  std::printf("all %zu worker processes exited cleanly: %s\n",
              children.size(), failures == 0 ? "yes" : "NO");
  return failures;
}
